/**
 * @file
 * Unit tests for the data TLB and the best-offset prefetcher.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "cpu/tlb.hh"
#include "prefetch/best_offset.hh"

namespace spburst
{
namespace
{

// ---------------------------------------------------------------------
// TLB
// ---------------------------------------------------------------------

TEST(Tlb, MissThenHit)
{
    Tlb tlb(TlbParams{});
    EXPECT_EQ(tlb.access(0x1000), tlb.params().walkLatency);
    EXPECT_EQ(tlb.access(0x1008), 0u) << "same page hits";
    EXPECT_EQ(tlb.access(0x1fff), 0u);
    EXPECT_EQ(tlb.access(0x2000), tlb.params().walkLatency)
        << "next page misses";
    EXPECT_EQ(tlb.stats().hits, 2u);
    EXPECT_EQ(tlb.stats().misses, 2u);
}

TEST(Tlb, CapacityEvictsLru)
{
    TlbParams p;
    p.entries = 8;
    p.ways = 8; // fully associative, single set
    Tlb tlb(p);
    for (Addr page = 0; page < 8; ++page)
        tlb.access(page << kPageShift);
    EXPECT_TRUE(tlb.probe(0));
    // Touch page 0 so page 1 becomes LRU, then insert a 9th page.
    tlb.access(0);
    tlb.access(8ull << kPageShift);
    EXPECT_TRUE(tlb.probe(0));
    EXPECT_FALSE(tlb.probe(1ull << kPageShift)) << "LRU page evicted";
    EXPECT_TRUE(tlb.probe(8ull << kPageShift));
}

TEST(Tlb, DisabledCostsNothing)
{
    TlbParams p;
    p.enabled = false;
    Tlb tlb(p);
    for (Addr a = 0; a < 100 * kPageSize; a += kPageSize)
        EXPECT_EQ(tlb.access(a), 0u);
    EXPECT_EQ(tlb.stats().misses, 0u);
}

TEST(Tlb, SetIndexingSpreadsPages)
{
    Tlb tlb(TlbParams{}); // 64 entries, 8-way -> 8 sets
    // 8 pages mapping to the same set must all fit (8 ways)...
    for (Addr page = 0; page < 64; page += 8)
        tlb.access(page << kPageShift);
    for (Addr page = 0; page < 64; page += 8)
        EXPECT_TRUE(tlb.probe(page << kPageShift));
    // ...and the 9th conflicts.
    tlb.access(64ull << kPageShift);
    int resident = 0;
    for (Addr page = 0; page < 72; page += 8)
        resident += tlb.probe(page << kPageShift);
    EXPECT_EQ(resident, 8);
}

// ---------------------------------------------------------------------
// Best-offset prefetcher
// ---------------------------------------------------------------------

MemRequest
demandAt(Addr block)
{
    MemRequest r;
    r.cmd = MemCmd::ReadReq;
    r.blockAddr = block << kBlockShift;
    return r;
}

TEST(BestOffset, LearnsAConstantStride)
{
    BestOffsetPrefetcher bop;
    std::vector<Addr> out;
    // Stride of 3 blocks, long enough to finish a learning round.
    for (Addr b = 0; b < 4000; b += 3)
        bop.notifyAccess(demandAt(b), false, out);
    EXPECT_GE(bop.stats().rounds, 1u);
    EXPECT_EQ(bop.stats().lastBestOffset, 3)
        << "BOP must converge on the true stride";
}

TEST(BestOffset, PrefetchesWithTheCurrentOffset)
{
    BestOffsetPrefetcher bop; // starts with offset 1
    std::vector<Addr> out;
    bop.notifyAccess(demandAt(100), false, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], Addr{101} << kBlockShift);
}

TEST(BestOffset, TurnsOffOnRandomTraffic)
{
    BestOffsetParams params;
    params.roundMax = 20; // fast rounds for the test
    BestOffsetPrefetcher bop(params);
    Rng rng(5);
    std::vector<Addr> out;
    for (int i = 0; i < 30000; ++i) {
        out.clear();
        bop.notifyAccess(demandAt(rng.below(1u << 26)), false, out);
    }
    EXPECT_EQ(bop.currentOffset(), 0)
        << "no offset scores on random traffic: prefetching stops";
    EXPECT_GE(bop.stats().offChanges, 1u);
}

TEST(BestOffset, RecoversAfterPhaseChange)
{
    BestOffsetParams params;
    params.roundMax = 20;
    BestOffsetPrefetcher bop(params);
    Rng rng(5);
    std::vector<Addr> out;
    for (int i = 0; i < 30000; ++i) {
        out.clear();
        bop.notifyAccess(demandAt(rng.below(1u << 26)), false, out);
    }
    ASSERT_EQ(bop.currentOffset(), 0);
    // A regular phase re-enables prefetching with the right offset.
    for (Addr b = 0; b < 20000; b += 2)
        bop.notifyAccess(demandAt(b), false, out);
    EXPECT_EQ(bop.stats().lastBestOffset, 2);
}

TEST(BestOffset, CandidateListIsSane)
{
    const auto &offsets = BestOffsetPrefetcher::candidateOffsets();
    EXPECT_GE(offsets.size(), 16u);
    EXPECT_EQ(offsets.front(), 1);
    for (std::size_t i = 1; i < offsets.size(); ++i)
        EXPECT_GT(offsets[i], offsets[i - 1]) << "sorted, unique";
}

} // namespace
} // namespace spburst
