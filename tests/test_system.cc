/**
 * @file
 * System-level integration and property tests: determinism, the
 * paper's performance ordering (ideal >= SPB >= at-commit >= none on
 * SB-bound workloads), SB-stall behaviour across SB sizes, multicore
 * runs, and energy accounting.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"
#include "sim/system.hh"

namespace spburst
{
namespace
{

SimResult
quickRun(const std::string &workload, unsigned sb,
         StorePrefetchPolicy policy, bool spb = false, bool ideal = false,
         std::uint64_t uops = 40'000)
{
    SystemConfig cfg = makeConfig(workload, sb, policy, spb, ideal);
    cfg.maxUopsPerCore = uops;
    return runSystem(cfg);
}

TEST(SystemIntegration, RunsToCompletion)
{
    const SimResult r =
        quickRun("x264", 56, StorePrefetchPolicy::AtCommit);
    EXPECT_GE(r.committedUops(), 40'000u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc(), 0.0);
}

TEST(SystemIntegration, DeterministicUnderSeed)
{
    const SimResult a =
        quickRun("blender", 28, StorePrefetchPolicy::AtCommit);
    const SimResult b =
        quickRun("blender", 28, StorePrefetchPolicy::AtCommit);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1d[0].loadMisses, b.l1d[0].loadMisses);
    EXPECT_EQ(a.dramReads, b.dramReads);
}

TEST(SystemIntegration, SeedChangesTheRun)
{
    SystemConfig cfg = makeConfig("blender", 28,
                                  StorePrefetchPolicy::AtCommit);
    cfg.maxUopsPerCore = 30'000;
    const SimResult a = runSystem(cfg);
    cfg.seed = 99;
    const SimResult b = runSystem(cfg);
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(SystemIntegration, PaperOrderingOnSbBoundWorkload)
{
    const std::uint64_t uops = 60'000;
    const SimResult none =
        quickRun("x264", 14, StorePrefetchPolicy::None, false, false,
                 uops);
    const SimResult ac =
        quickRun("x264", 14, StorePrefetchPolicy::AtCommit, false, false,
                 uops);
    const SimResult spb =
        quickRun("x264", 14, StorePrefetchPolicy::AtCommit, true, false,
                 uops);
    const SimResult ideal =
        quickRun("x264", 14, StorePrefetchPolicy::AtCommit, false, true,
                 uops);
    // The paper's central result, as cycle counts (lower is better):
    EXPECT_LE(ideal.cycles, spb.cycles);
    EXPECT_LT(spb.cycles, ac.cycles);
    EXPECT_LE(ac.cycles, none.cycles * 101 / 100);
    // And SPB must recover most of the at-commit -> ideal gap.
    const double gap_closed =
        static_cast<double>(ac.cycles - spb.cycles) /
        static_cast<double>(ac.cycles - ideal.cycles);
    EXPECT_GT(gap_closed, 0.5);
}

TEST(SystemIntegration, SpbRemovesMostSbStalls)
{
    const SimResult ac =
        quickRun("bwaves", 14, StorePrefetchPolicy::AtCommit);
    const SimResult spb =
        quickRun("bwaves", 14, StorePrefetchPolicy::AtCommit, true);
    EXPECT_LT(spb.sbStalls(), ac.sbStalls() / 2);
}

TEST(SystemIntegration, SmallerSbMeansMoreSbStalls)
{
    const SimResult sb56 =
        quickRun("roms", 56, StorePrefetchPolicy::AtCommit);
    const SimResult sb14 =
        quickRun("roms", 14, StorePrefetchPolicy::AtCommit);
    EXPECT_GT(sb14.sbStallRatio(), sb56.sbStallRatio())
        << "Fig. 1: shrinking the SB must increase SB-induced stalls";
}

TEST(SystemIntegration, NonSbBoundWorkloadBarelyCares)
{
    const SimResult sb56 =
        quickRun("namd", 56, StorePrefetchPolicy::AtCommit);
    const SimResult sb14 =
        quickRun("namd", 14, StorePrefetchPolicy::AtCommit);
    EXPECT_LT(sb56.sbStallRatio(), 0.02);
    const double slowdown = static_cast<double>(sb14.cycles) /
                            static_cast<double>(sb56.cycles);
    EXPECT_LT(slowdown, 1.06);
}

TEST(SystemIntegration, SpbIssuesBurstsOnlyWhenPatternsExist)
{
    const SimResult bound =
        quickRun("x264", 56, StorePrefetchPolicy::AtCommit, true);
    ASSERT_EQ(bound.spbs.size(), 1u);
    EXPECT_GT(bound.spbs[0].bursts, 0u);

    const SimResult chase =
        quickRun("mcf", 56, StorePrefetchPolicy::AtCommit, true);
    ASSERT_EQ(chase.spbs.size(), 1u);
    // mcf stores are scattered: bursts must be (nearly) absent.
    EXPECT_LT(chase.spbs[0].bursts, bound.spbs[0].bursts / 4 + 1);
}

TEST(SystemIntegration, StorePrefetchOutcomesPartition)
{
    const SimResult r =
        quickRun("x264", 28, StorePrefetchPolicy::AtCommit, true);
    const auto &l1 = r.l1d[0];
    // Outcome classes never exceed the store prefetches that went out.
    EXPECT_LE(l1.pfSuccessful + l1.pfNeverUsed,
              l1.pfIssued + l1.spbIssued + l1.pfDiscarded);
    EXPECT_GT(l1.pfSuccessful, 0u);
}

TEST(SystemIntegration, AtCommitPrefetchesAreMostlyLate)
{
    // Paper Fig. 11: at-commit success is low and late dominates.
    const SimResult r =
        quickRun("bwaves", 56, StorePrefetchPolicy::AtCommit);
    const auto &l1 = r.l1d[0];
    EXPECT_GT(l1.pfLate, l1.pfSuccessful)
        << "at-commit prefetches should mostly be late";
}

TEST(SystemIntegration, SpbFlipsLateIntoSuccessful)
{
    const SimResult ac =
        quickRun("bwaves", 56, StorePrefetchPolicy::AtCommit);
    const SimResult spb =
        quickRun("bwaves", 56, StorePrefetchPolicy::AtCommit, true);
    const double ac_succ =
        ratio(static_cast<double>(ac.l1d[0].pfSuccessful),
              static_cast<double>(ac.l1d[0].pfSuccessful +
                                  ac.l1d[0].pfLate));
    const double spb_succ =
        ratio(static_cast<double>(spb.l1d[0].pfSuccessful),
              static_cast<double>(spb.l1d[0].pfSuccessful +
                                  spb.l1d[0].pfLate));
    EXPECT_GT(spb_succ, ac_succ + 0.2);
}

TEST(SystemIntegration, EnergyComponentsArePositiveAndOrdered)
{
    const SimResult r =
        quickRun("cam4", 56, StorePrefetchPolicy::AtCommit);
    EXPECT_GT(r.energy.cacheDynamicPj, 0.0);
    EXPECT_GT(r.energy.coreDynamicPj, 0.0);
    EXPECT_GT(r.energy.leakagePj, 0.0);
    EXPECT_NEAR(r.energy.totalPj(),
                r.energy.cacheDynamicPj + r.energy.coreDynamicPj +
                    r.energy.leakagePj,
                1e-6);
}

TEST(SystemIntegration, SpbSavesEnergyOnSmallSb)
{
    // Paper Fig. 7: for SB14 the SPB net energy is clearly lower.
    const SimResult ac =
        quickRun("x264", 14, StorePrefetchPolicy::AtCommit, false, false,
                 60'000);
    const SimResult spb =
        quickRun("x264", 14, StorePrefetchPolicy::AtCommit, true, false,
                 60'000);
    EXPECT_LT(spb.energy.totalPj(), ac.energy.totalPj());
}

TEST(SystemIntegration, PrefetcherKindsAllRun)
{
    for (L1PrefetcherKind kind :
         {L1PrefetcherKind::None, L1PrefetcherKind::Stream,
          L1PrefetcherKind::Aggressive, L1PrefetcherKind::Adaptive}) {
        SystemConfig cfg =
            makeConfig("fotonik3d", 28, StorePrefetchPolicy::AtCommit);
        cfg.l1Prefetcher = kind;
        cfg.maxUopsPerCore = 20'000;
        const SimResult r = runSystem(cfg);
        EXPECT_GE(r.committedUops(), 20'000u)
            << l1PrefetcherKindName(kind);
    }
}

TEST(SystemIntegration, TableIIPresetsAllRun)
{
    for (const CoreParams &p : tableIIPresets()) {
        SystemConfig cfg =
            makeConfig("blender", 0, StorePrefetchPolicy::AtCommit);
        cfg.coreParams = p;
        cfg.maxUopsPerCore = 20'000;
        const SimResult r = runSystem(cfg);
        EXPECT_GE(r.committedUops(), 20'000u) << p.name;
    }
}

// ---------------------------------------------------------------------
// Multicore
// ---------------------------------------------------------------------

TEST(SystemMulticore, EightThreadParsecRuns)
{
    SystemConfig cfg =
        makeConfig("dedup", 28, StorePrefetchPolicy::AtCommit, true);
    cfg.threads = 8;
    cfg.maxUopsPerCore = 8'000;
    const SimResult r = runSystem(cfg);
    EXPECT_EQ(r.cores.size(), 8u);
    for (const auto &c : r.cores)
        EXPECT_GE(c.committedUops, 8'000u);
    // Shared-region traffic exercises the directory.
    EXPECT_GT(r.directory.invalidations + r.directory.downgrades, 0u);
}

TEST(SystemMulticore, SpbHelpsParallelSbBoundApp)
{
    SystemConfig ac =
        makeConfig("x264_parsec", 14, StorePrefetchPolicy::AtCommit);
    ac.threads = 4;
    ac.maxUopsPerCore = 12'000;
    SystemConfig spb = ac;
    spb.useSpb = true;
    const SimResult ra = runSystem(ac);
    const SimResult rs = runSystem(spb);
    EXPECT_LT(rs.cycles, ra.cycles)
        << "SPB must also help the multithreaded SB-bound runs";
}

// ---------------------------------------------------------------------
// Parameterised property sweeps
// ---------------------------------------------------------------------

class SbSizeSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SbSizeSweep, CyclesMonotonicallyImproveTowardIdeal)
{
    const unsigned sb = GetParam();
    const SimResult ac =
        quickRun("x264", sb, StorePrefetchPolicy::AtCommit, false, false,
                 30'000);
    const SimResult spb =
        quickRun("x264", sb, StorePrefetchPolicy::AtCommit, true, false,
                 30'000);
    const SimResult ideal =
        quickRun("x264", sb, StorePrefetchPolicy::AtCommit, false, true,
                 30'000);
    EXPECT_LE(ideal.cycles, spb.cycles * 101 / 100);
    EXPECT_LE(spb.cycles, ac.cycles * 101 / 100);
    // All configurations commit exactly the same work.
    EXPECT_EQ(ac.committedUops(), spb.committedUops());
}

INSTANTIATE_TEST_SUITE_P(SbSizes, SbSizeSweep,
                         ::testing::Values(8u, 14u, 20u, 28u, 56u));

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, InvariantsHoldAcrossSeeds)
{
    SystemConfig cfg =
        makeConfig("deepsjeng", 28, StorePrefetchPolicy::AtCommit, true);
    cfg.seed = GetParam();
    cfg.maxUopsPerCore = 25'000;
    const SimResult r = runSystem(cfg);
    const auto &c = r.cores[0];
    const auto &l1 = r.l1d[0];
    // Conservation: every committed store drained or is still senior.
    EXPECT_LE(r.sbs[0].drained, c.committedStores);
    // No stall counter can exceed total cycles.
    EXPECT_LE(c.sbStalls(), r.cycles);
    EXPECT_LE(c.execStallL1dPending, r.cycles);
    // Hits + misses == demand loads that reached the L1D.
    EXPECT_EQ(l1.loadHits + l1.loadMisses, c.loadsToL1);
    // DRAM reads can never exceed total L2 misses going down.
    EXPECT_GT(r.dramReads, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 17ull,
                                           123456789ull));

class NSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(NSweep, SpbWorksForEveryWindowLength)
{
    SystemConfig cfg =
        makeConfig("blender", 14, StorePrefetchPolicy::AtCommit, true);
    cfg.spb.checkInterval = GetParam();
    cfg.maxUopsPerCore = 25'000;
    const SimResult r = runSystem(cfg);
    ASSERT_EQ(r.spbs.size(), 1u);
    EXPECT_GT(r.spbs[0].bursts, 0u)
        << "N=" << GetParam() << " must still detect memset bursts";
}

INSTANTIATE_TEST_SUITE_P(WindowLengths, NSweep,
                         ::testing::Values(8u, 16u, 24u, 32u, 48u, 64u));

} // namespace
} // namespace spburst
