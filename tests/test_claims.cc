/**
 * @file
 * Headline-claim shape tests: slower checks (bigger runs) asserting the
 * paper's central quantitative relationships hold in this reproduction.
 * These are the "did we reproduce the paper" gates; the bench harnesses
 * print the full data.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "trace/workloads.hh"

namespace spburst
{
namespace
{

constexpr std::uint64_t kUops = 60'000;

double
normToIdeal(const std::string &w, unsigned sb, StorePrefetchPolicy p,
            bool spb)
{
    SystemConfig ideal = makeConfig(w, 56, p, false, true);
    ideal.maxUopsPerCore = kUops;
    SystemConfig cfg = makeConfig(w, sb, p, spb);
    cfg.maxUopsPerCore = kUops;
    return static_cast<double>(runSystem(ideal).cycles) /
           static_cast<double>(runSystem(cfg).cycles);
}

TEST(PaperClaims, Claim1_AtCommit56IsNearIdeal)
{
    // "a 56-entry SB with the default prefetch policy yields ~98% of
    // an ideal SB" — checked on a non-pathological SB-bound app.
    const double v = normToIdeal("cam4", 56,
                                 StorePrefetchPolicy::AtCommit, false);
    EXPECT_GT(v, 0.93);
}

TEST(PaperClaims, Claim2_SpbRecoversSmallSbPerformance)
{
    // SB14: at-commit falls hard, SPB recovers most of it (paper:
    // 70.1% -> 92.6% for SB-bound apps).
    const double ac =
        normToIdeal("bwaves", 14, StorePrefetchPolicy::AtCommit, false);
    const double spb =
        normToIdeal("bwaves", 14, StorePrefetchPolicy::AtCommit, true);
    EXPECT_LT(ac, 0.80);
    EXPECT_GT(spb, ac + 0.10);
}

TEST(PaperClaims, Claim3_Spb20MatchesAtCommit56)
{
    // "a 20-entry SB with SPB achieves the average performance of a
    // standard 56-entry SB" — per-app check on x264.
    SystemConfig ac56 =
        makeConfig("x264", 56, StorePrefetchPolicy::AtCommit);
    ac56.maxUopsPerCore = kUops;
    SystemConfig spb20 =
        makeConfig("x264", 20, StorePrefetchPolicy::AtCommit, true);
    spb20.maxUopsPerCore = kUops;
    const auto a = runSystem(ac56).cycles;
    const auto b = runSystem(spb20).cycles;
    EXPECT_LT(static_cast<double>(b),
              static_cast<double>(a) * 1.05)
        << "SPB@20 should be within 5% of at-commit@56";
}

TEST(PaperClaims, Claim4_SpbSuccessRateFarAboveAtCommit)
{
    // Fig. 11: at-commit success 5-10%, SPB 30-50%.
    auto success_rate = [](bool spb) {
        SystemConfig cfg = makeConfig(
            "bwaves", 28, StorePrefetchPolicy::AtCommit, spb);
        cfg.maxUopsPerCore = kUops;
        const SimResult r = runSystem(cfg);
        const auto &l1 = r.l1d[0];
        const double classified =
            static_cast<double>(l1.pfSuccessful + l1.pfLate +
                                l1.pfEarly + l1.pfNeverUsed);
        return classified == 0.0
                   ? 0.0
                   : static_cast<double>(l1.pfSuccessful) / classified;
    };
    const double ac = success_rate(false);
    const double spb = success_rate(true);
    EXPECT_LT(ac, 0.25);
    EXPECT_GT(spb, 0.5);
}

TEST(PaperClaims, Claim5_SpbStorageIs67Bits)
{
    SpbParams p; // paper configuration: N = 48
    SpbDetector d(p);
    // 58 + 4 + 6 = 68 with an exact ceil(log2(48+1)) count register;
    // the paper's 67 assumes a 5-bit count. Either way: tiny.
    EXPECT_LE(d.storageBits(), 68u);
    EXPECT_GE(d.storageBits(), 67u);
}

TEST(PaperClaims, Claim6_SpbOrthogonalToAggressivePrefetchers)
{
    // Fig. 16: even with an aggressive L1 prefetcher, SPB still beats
    // plain at-commit (the cache prefetcher cannot remove SB stalls).
    SystemConfig ac =
        makeConfig("bwaves", 14, StorePrefetchPolicy::AtCommit);
    ac.l1Prefetcher = L1PrefetcherKind::Aggressive;
    ac.maxUopsPerCore = kUops;
    SystemConfig spb = ac;
    spb.useSpb = true;
    EXPECT_LT(runSystem(spb).cycles, runSystem(ac).cycles);
}

TEST(PaperClaims, Claim7_SbBoundClassificationMatchesPaper)
{
    // The >2% rule at SB56 must classify (at least) the paper's
    // SB-bound applications as SB-bound in our reproduction too —
    // checked on the clearest four.
    for (const char *w : {"bwaves", "cactuBSSN", "roms", "x264"}) {
        SystemConfig cfg =
            makeConfig(w, 56, StorePrefetchPolicy::AtCommit);
        cfg.maxUopsPerCore = kUops;
        EXPECT_GT(runSystem(cfg).sbStallRatio(), 0.02) << w;
    }
}

} // namespace
} // namespace spburst
