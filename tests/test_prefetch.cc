/**
 * @file
 * Unit tests for the L1 stream prefetcher and its feedback-directed
 * (aggressive / adaptive) variants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "prefetch/stream_prefetcher.hh"

namespace spburst
{
namespace
{

MemRequest
loadAt(Addr addr)
{
    MemRequest r;
    r.cmd = MemCmd::ReadReq;
    r.blockAddr = blockAlign(addr);
    return r;
}

std::vector<Addr>
feedSequential(StreamPrefetcher &pf, Addr base, int blocks)
{
    std::vector<Addr> out;
    for (int i = 0; i < blocks; ++i)
        pf.notifyAccess(loadAt(base + i * kBlockSize), false, out);
    return out;
}

TEST(StreamPrefetcher, ModeOperatingPoints)
{
    EXPECT_EQ(StreamPrefetcher(PrefetcherMode::Stream).degree(), 1u);
    EXPECT_EQ(StreamPrefetcher(PrefetcherMode::Stream).distance(), 1u);
    EXPECT_EQ(StreamPrefetcher(PrefetcherMode::Aggressive).degree(), 8u);
    EXPECT_EQ(StreamPrefetcher(PrefetcherMode::Aggressive).distance(),
              48u);
    EXPECT_EQ(StreamPrefetcher(PrefetcherMode::Adaptive).degree(), 4u);
}

TEST(StreamPrefetcher, NoPrefetchBeforeTraining)
{
    StreamPrefetcher pf(PrefetcherMode::Stream);
    std::vector<Addr> out;
    pf.notifyAccess(loadAt(0x1000), false, out);
    EXPECT_TRUE(out.empty()) << "first touch must not prefetch";
    pf.notifyAccess(loadAt(0x1040), false, out);
    EXPECT_TRUE(out.empty()) << "below the training threshold";
}

TEST(StreamPrefetcher, TrainedStreamEmitsNextBlock)
{
    StreamPrefetcher pf(PrefetcherMode::Stream);
    const auto out = feedSequential(pf, 0x1000, 4);
    ASSERT_FALSE(out.empty());
    // Degree 1, distance 1: the next block after the trigger.
    EXPECT_EQ(out.front(), blockAlign(0x1000) + 3 * kBlockSize);
    EXPECT_GE(pf.stats().trainings, 1u);
}

TEST(StreamPrefetcher, DoesNotReissueCoveredBlocks)
{
    StreamPrefetcher pf(PrefetcherMode::Stream);
    const auto out = feedSequential(pf, 0x1000, 16);
    std::set<Addr> unique(out.begin(), out.end());
    EXPECT_EQ(unique.size(), out.size()) << "no duplicate prefetches";
}

TEST(StreamPrefetcher, AggressiveRunsFurtherAhead)
{
    StreamPrefetcher stream(PrefetcherMode::Stream);
    StreamPrefetcher aggressive(PrefetcherMode::Aggressive);
    const auto a = feedSequential(stream, 0x1000, 8);
    const auto b = feedSequential(aggressive, 0x1000, 8);
    EXPECT_GT(b.size(), a.size());
    ASSERT_FALSE(b.empty());
    EXPECT_GT(*std::max_element(b.begin(), b.end()),
              *std::max_element(a.begin(), a.end()));
}

TEST(StreamPrefetcher, RandomAccessesNeverTrain)
{
    StreamPrefetcher pf(PrefetcherMode::Aggressive);
    std::vector<Addr> out;
    Rng rng(3);
    for (int i = 0; i < 200; ++i)
        pf.notifyAccess(loadAt(rng.below(1u << 30)), false, out);
    EXPECT_LT(out.size(), 20u) << "random traffic must stay quiet";
}

TEST(StreamPrefetcher, TracksMultipleStreams)
{
    StreamPrefetcher pf(PrefetcherMode::Stream);
    std::vector<Addr> out;
    for (int i = 0; i < 8; ++i) {
        pf.notifyAccess(loadAt(0x100000 + i * kBlockSize), false, out);
        pf.notifyAccess(loadAt(0x900000 + i * kBlockSize), false, out);
    }
    bool low = false, high = false;
    for (Addr a : out) {
        low |= a < 0x200000;
        high |= a >= 0x900000;
    }
    EXPECT_TRUE(low && high) << "both streams must be detected";
}

TEST(AdaptivePrefetcher, ThrottlesDownOnPollution)
{
    StreamPrefetcher pf(PrefetcherMode::Adaptive);
    const unsigned start = pf.aggressivenessLevel();
    feedSequential(pf, 0x1000, 64); // generate some issue volume
    PrefetchFeedback bad;
    bad.pollutionEvict = true;
    for (int i = 0; i < 5000; ++i)
        pf.notifyFeedback(bad);
    EXPECT_LT(pf.aggressivenessLevel(), start);
    EXPECT_GE(pf.stats().throttleDowns, 1u);
}

TEST(AdaptivePrefetcher, RampsUpWhenAccurateButLate)
{
    StreamPrefetcher pf(PrefetcherMode::Adaptive);
    const unsigned start = pf.aggressivenessLevel();
    // Small issue volume + lots of useful & late feedback.
    feedSequential(pf, 0x1000, 6);
    PrefetchFeedback good;
    good.usefulHit = true;
    good.latePrefetch = true;
    for (int i = 0; i < 5000; ++i)
        pf.notifyFeedback(good);
    EXPECT_GT(pf.aggressivenessLevel(), start);
    EXPECT_GE(pf.stats().throttleUps, 1u);
}

TEST(AdaptivePrefetcher, FixedModesNeverAdapt)
{
    StreamPrefetcher pf(PrefetcherMode::Aggressive);
    PrefetchFeedback bad;
    bad.pollutionEvict = true;
    for (int i = 0; i < 5000; ++i)
        pf.notifyFeedback(bad);
    EXPECT_EQ(pf.degree(), 8u) << "aggressive mode is fixed";
}

TEST(StreamPrefetcher, FeedbackCountersAccumulate)
{
    StreamPrefetcher pf(PrefetcherMode::Adaptive);
    PrefetchFeedback fb;
    fb.usefulHit = true;
    pf.notifyFeedback(fb);
    fb = PrefetchFeedback{};
    fb.latePrefetch = true;
    pf.notifyFeedback(fb);
    fb = PrefetchFeedback{};
    fb.pollutionEvict = true;
    pf.notifyFeedback(fb);
    EXPECT_EQ(pf.prefetcherStats().usefulHits, 1u);
    EXPECT_EQ(pf.prefetcherStats().late, 1u);
    EXPECT_EQ(pf.prefetcherStats().pollution, 1u);
}

TEST(StreamPrefetcher, NamesFollowTheMode)
{
    EXPECT_STREQ(StreamPrefetcher(PrefetcherMode::Stream).name(),
                 "stride");
    EXPECT_STREQ(StreamPrefetcher(PrefetcherMode::Aggressive).name(),
                 "fdp");
    EXPECT_STREQ(StreamPrefetcher(PrefetcherMode::Adaptive).name(),
                 "fdp");
}

TEST(StreamPrefetcher, ModeNames)
{
    EXPECT_STREQ(prefetcherModeName(PrefetcherMode::Stream), "stream");
    EXPECT_STREQ(prefetcherModeName(PrefetcherMode::Aggressive),
                 "aggressive");
    EXPECT_STREQ(prefetcherModeName(PrefetcherMode::Adaptive),
                 "adaptive");
}

} // namespace
} // namespace spburst
