/**
 * @file
 * Additional core-pipeline tests: DTLB timing at address generation,
 * load-queue stall attribution, front-end depth, memory-port limits
 * and fetch-buffer bounds.
 */

#include <gtest/gtest.h>

#include "common/clock.hh"
#include "cpu/core.hh"
#include "mem/memory_system.hh"
#include "trace/source.hh"

namespace spburst
{
namespace
{

class CoreMoreTest : public ::testing::Test
{
  protected:
    void
    build(std::vector<MicroOp> uops, CoreConfig cfg = CoreConfig{},
          bool loop = true)
    {
        mem = std::make_unique<MemorySystem>(MemSystemParams::tableI(1),
                                             &clock);
        trace = std::make_unique<VectorSource>(std::move(uops), loop);
        core = std::make_unique<Core>(cfg, 0, &clock, &mem->l1d(0),
                                      trace.get());
    }

    void
    runUops(std::uint64_t target, Cycle budget = 3'000'000)
    {
        const Cycle limit = clock.now + budget;
        while (core->committed() < target && clock.now < limit) {
            clock.tick();
            core->tick();
        }
        ASSERT_GE(core->committed(), target) << "core made no progress";
    }

    void
    tickOne()
    {
        clock.tick();
        core->tick();
    }

    SimClock clock;
    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<VectorSource> trace;
    std::unique_ptr<Core> core;
};

TEST_F(CoreMoreTest, TlbMissesChargePageWalks)
{
    // Loads striding one page apart: every access touches a new page
    // until the TLB warms; with 64 entries over a 128-page footprint,
    // misses keep coming.
    std::vector<MicroOp> uops;
    for (int i = 0; i < 128; ++i)
        uops.push_back(
            uops::load(0x1000 + i * 4, 0x10000000 + Addr(i) * kPageSize));
    build(std::move(uops));
    runUops(5000);
    EXPECT_GT(core->dtlb().stats().misses, 100u);
}

TEST_F(CoreMoreTest, PageLocalLoadsHitTlb)
{
    std::vector<MicroOp> uops;
    for (int i = 0; i < 64; ++i)
        uops.push_back(uops::load(0x1000 + i * 4, 0x10000000 + i * 8));
    build(std::move(uops));
    runUops(5000);
    EXPECT_LE(core->dtlb().stats().misses, 2u);
    EXPECT_GT(core->dtlb().stats().hits, 4000u);
}

TEST_F(CoreMoreTest, TlbMissSlowsSerialLoadChain)
{
    // Two identical dependent-load chains, one page-local and one
    // page-striding: the striding one must take longer because of the
    // page walks. The trace must NOT loop — with a looping trace, the
    // out-of-order lookahead of the next iteration's independent head
    // load warms the TLB in parallel and hides the walks (which is
    // itself realistic behaviour).
    auto run_chain = [&](bool stride_pages) {
        std::vector<MicroOp> uops;
        for (int i = 0; i < 32; ++i) {
            const Addr addr = stride_pages
                                  ? 0x40000000 + Addr(i) * kPageSize
                                  : 0x40000000 + Addr(i) * kBlockSize;
            uops.push_back(uops::load(0x1000 + i * 4, addr, 8,
                                      i == 0 ? 0 : 1)); // serial chain
        }
        clock = SimClock{};
        build(std::move(uops), CoreConfig{}, /*loop=*/false);
        runUops(32);
        return clock.now;
    };
    const Cycle local = run_chain(false);
    const Cycle striding = run_chain(true);
    EXPECT_GT(striding, local + 500u)
        << "32 page walks at ~50 cycles each must be visible";
}

TEST_F(CoreMoreTest, LqFullStallsAttributedToLq)
{
    // Long-latency loads flood the LQ (cold, all distinct blocks).
    std::vector<MicroOp> uops;
    for (int i = 0; i < 256; ++i)
        uops.push_back(
            uops::load(0x1000 + i * 4, 0x20000000 + Addr(i) * kBlockSize));
    CoreConfig cfg;
    cfg.params.lqSize = 4;
    build(std::move(uops), cfg);
    runUops(1000);
    EXPECT_GT(core->stats()
                  .dispatchStalls[static_cast<int>(StallResource::Lq)],
              100u);
}

TEST_F(CoreMoreTest, TinyRobStallsAttributedToRob)
{
    std::vector<MicroOp> uops;
    uops.push_back(uops::load(0x1000, 0x30000000)); // slow head
    for (int i = 0; i < 32; ++i)
        uops.push_back(uops::alu(0x1010 + i * 4));
    CoreConfig cfg;
    cfg.params.robSize = 8;
    cfg.params.iqSize = 8;
    build(std::move(uops), cfg);
    runUops(2000);
    const auto &s = core->stats();
    EXPECT_GT(s.dispatchStalls[static_cast<int>(StallResource::Rob)] +
                  s.dispatchStalls[static_cast<int>(StallResource::Iq)],
              100u);
}

TEST_F(CoreMoreTest, MemPortsLimitLoadIssue)
{
    // All-independent L1-resident loads: throughput capped by the two
    // memory ports, not the issue width.
    std::vector<MicroOp> uops;
    for (int i = 0; i < 8; ++i)
        uops.push_back(uops::load(0x1000 + i * 4, 0x40000000 + i * 8));
    build(std::move(uops));
    runUops(40'000);
    const double ipc = static_cast<double>(core->stats().committedUops) /
                       static_cast<double>(core->stats().cycles);
    EXPECT_LT(ipc, 2.3) << "2 memory ports cap load IPC at ~2";
    EXPECT_GT(ipc, 1.5);
}

TEST_F(CoreMoreTest, FrontEndDepthDelaysFirstCommit)
{
    std::vector<MicroOp> uops{uops::alu(0x1000)};
    CoreConfig cfg;
    cfg.params.frontEndDepth = 20;
    build(std::move(uops), cfg);
    while (core->committed() == 0)
        tickOne();
    EXPECT_GE(clock.now, 20u)
        << "nothing can commit before traversing the front end";
}

} // namespace
} // namespace spburst
