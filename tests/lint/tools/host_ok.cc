// Fixture: host-side directories (tools/, src/exp, bench setup) are
// exempt from the determinism rules — this rand() is legal here.
#include <cstdlib>

namespace fx
{

inline unsigned
hostSeed()
{
    return rand();
}

} // namespace fx
