// Fixture: config-key-coverage — '--frobnicate=' is parsed but
// neither annotated config(key)/config(host-only) nor listed in a
// file-level allowlist; '--seed=' is covered and must stay silent.
namespace fx
{

inline void
parse(const std::string &arg, Options &o)
{
    if (arg.rfind("--seed=", 0) == 0) { // spburst-lint: config(key)
        o.seed = 1;
    } else if (arg.rfind("--frobnicate=", 0) == 0) {
        o.frobnicate = true;
    }
}

} // namespace fx
