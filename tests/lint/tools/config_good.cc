// Fixture: config-key-coverage negatives — every parsed option is
// covered: by a trailing config(key), a trailing config(host-only),
// or the file-level allowlist below (split across lines to exercise
// the multi-line list parser).

/* spburst-lint: config-host-only(out,
       list-workloads, help)
   -- fixture: host-side output and discovery options. */

namespace fx
{

inline void
parse(const std::string &arg, Options &o)
{
    if (arg.rfind("--seed=", 0) == 0) { // spburst-lint: config(key)
        o.seed = 1;
    } else if (arg == "--verbose") { // spburst-lint: config(host-only)
        o.verbose = true;
    } else if (arg.rfind("--out=", 0) == 0) {
        o.out = arg;
    } else if (arg == "--list-workloads") {
        o.list = true;
    } else if (arg == "--help") {
        o.help = true;
    }
}

} // namespace fx
