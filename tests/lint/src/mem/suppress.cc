// Fixture: suppression machinery — the first allow() silences the
// rand() on the next line (used), the second silences nothing and
// must be reported as unused-suppression.
#include <cstdlib>

namespace fx
{

inline unsigned
mixed()
{
    // spburst-lint: allow(nondeterminism) -- fixture: justified host entropy
    unsigned x = rand();
    unsigned y = 1; // spburst-lint: allow(nondeterminism) -- stale
    return x + y;
}

} // namespace fx
