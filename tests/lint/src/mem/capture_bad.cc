// Fixture: the callback-capture rule must flag default captures,
// reference captures, and raw pointers to pooled slots in scheduled
// lambdas.
namespace fx
{

struct MshrEntry
{
    unsigned long long addr;
};

struct EventQueue
{
    template <typename F>
    void schedule(unsigned long long when, F &&f);
};

inline void
arm(EventQueue &events, unsigned long long now)
{
    int pending = 0;
    events.schedule(now + 1, [&] { ++pending; });
    events.schedule(now + 1, [=] { (void)pending; });
    events.schedule(now + 2, [&pending] { ++pending; });
    MshrEntry *entry = nullptr;
    events.schedule(now + 3, [entry] { (void)entry->addr; });
}

} // namespace fx
