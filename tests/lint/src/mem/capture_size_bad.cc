// Fixture: the callback-inline-size rule must flag this capture set —
// this (8) + MemRequest (24) + MshrTarget (96) = 128 bytes, over the
// 112-byte inline buffer of EventQueue::Callback.
namespace fx
{

struct MemRequest
{
    unsigned long long blockAddr;
    unsigned long long payload[2];
};

struct MshrTarget
{
    unsigned char blob[96];
};

struct EventQueue
{
    template <typename F>
    void schedule(unsigned long long when, F &&f);
};

class Controller
{
  public:
    void retry(EventQueue &events, unsigned long long now);
};

inline void
Controller::retry(EventQueue &events, unsigned long long now)
{
    MemRequest req;
    MshrTarget target;
    events.schedule(now + 1, [this, req, t = target]() mutable {
        (void)req;
        (void)t;
    });
}

} // namespace fx
