// Fixture: ff-stat-parity must flag a stat written under the ff(tick)
// tree but missing from the ff(skip) path, and an ff(tick) root whose
// class has no ff(skip) counterpart at all.
namespace fx
{

struct BurstStats
{
    unsigned long busyCycles = 0;
    unsigned long drained = 0;
};

class BurstUnit
{
  public:
    // spburst-lint: ff(tick)
    void tick()
    {
        ++stats_.busyCycles;
        finishDrain();
    }

    // spburst-lint: ff(skip)
    void skipCycles(unsigned long n)
    {
        stats_.busyCycles += n;
    }

  private:
    void finishDrain()
    {
        ++stats_.drained;
    }

    BurstStats stats_;
};

class LoneTicker
{
  public:
    // spburst-lint: ff(tick)
    void tick()
    {
        ++cycles_;
    }

  private:
    unsigned long cycles_ = 0;
};

} // namespace fx
