// Fixture: the nondeterminism rule must fire on every banned use below.
#include <cstdlib>
#include <ctime>

namespace fx
{

unsigned long long
seedFromHost()
{
    unsigned long long s = rand();
    s += static_cast<unsigned long long>(std::time(nullptr));
    s ^= std::chrono::steady_clock::now().time_since_epoch().count();
    if (getenv("SPBURST_SEED"))
        s += 1;
    return s;
}

} // namespace fx
