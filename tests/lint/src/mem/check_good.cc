// Fixture: pure SPBURST_CHECK conditions must pass — comparisons,
// const member calls, and logical operators are all side-effect-free.
namespace fx
{

struct Queue
{
    bool empty() const;
    int size() const;
};

inline void
audit(const Queue &q, int count, int limit)
{
    SPBURST_CHECK(Mshr, count <= limit, "bounded");
    SPBURST_CHECK(Mshr, q.empty() || q.size() > 0, "consistent");
    SPBURST_CHECK_SLOW(Mshr, count == 0 || !q.empty(), "drained");
}

} // namespace fx
