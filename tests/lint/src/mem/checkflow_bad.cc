// Fixture: check-purity-flow must flag a call inside SPBURST_CHECK
// whose callee mutates member state — directly or one level deeper.
namespace fx
{

class DrainOrder
{
  public:
    void audit(unsigned long seq)
    {
        SPBURST_CHECK(Sb, observeBurst(seq) != 0,
                      "drain order must advance");
    }

    void auditDeep(unsigned long seq)
    {
        SPBURST_CHECK(Sb, peekBurst(seq) != 0, "burst must exist");
    }

  private:
    unsigned long observeBurst(unsigned long seq)
    {
        last_ = seq;
        return last_;
    }

    unsigned long peekBurst(unsigned long seq)
    {
        return observeBurst(seq);
    }

    unsigned long last_ = 0;
};

} // namespace fx
