// Fixture: disciplined scheduled-callback captures must pass —
// explicit this plus small by-value scalars.
namespace fx
{

struct EventQueue
{
    template <typename F>
    void schedule(unsigned long long when, F &&f);
};

class Controller
{
  public:
    void arm(unsigned long long now);

  private:
    void fill(unsigned long long addr);
    EventQueue *events_;
};

inline void
Controller::arm(unsigned long long now)
{
    unsigned long long addr = 0x40;
    events_->schedule(now + 1, [this, addr] { fill(addr); });
}

} // namespace fx
