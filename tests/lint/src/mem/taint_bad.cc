// Fixture: nondeterminism-taint must track a host-pointer value
// through an assignment and one call level into a StatSet write, and
// flag a direct pointer-hash sink.
namespace fx
{

struct StatSet
{
    void set(const char *key, double v);
};

class BurstTracker
{
  public:
    unsigned long fold(const void *p)
    {
        return reinterpret_cast<unsigned long>(p);
    }

    void recordKey(unsigned long k)
    {
        sum_.set("burst.key", static_cast<double>(k));
    }

    void onDrain(const void *req)
    {
        unsigned long k = fold(req);
        recordKey(k);
    }

    void onHash(const int *slot)
    {
        sum_.set("burst.slot",
                 static_cast<double>(std::hash<const int *>{}(slot)));
    }

  private:
    StatSet sum_;
};

} // namespace fx
