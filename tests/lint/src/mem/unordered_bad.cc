// Fixture: the unordered-iteration rule must flag all four iteration
// shapes — bare variable, iterator loop, unqualified accessor, and
// accessor through a typed receiver.
#include <unordered_map>

namespace fx
{

class Table
{
  public:
    std::unordered_map<int, int> &entries() { return entries_; }

    int
    sumOwn() const
    {
        int sum = 0;
        for (const auto &[k, v] : entries())
            sum += v;
        return sum;
    }

  private:
    std::unordered_map<int, int> entries_;
};

inline int
sumAll(Table *table)
{
    std::unordered_map<int, int> local;
    int sum = 0;
    for (const auto &[k, v] : local)
        sum += v;
    for (auto it = local.begin(); it != local.end(); ++it)
        sum += it->second;
    for (const auto &[k, v] : table->entries())
        sum += v;
    return sum;
}

} // namespace fx
