// Fixture: stat-hot-path negatives — handle-keyed access in a hot
// function, a dynamic (non-literal) key, and a string key outside of
// any hot path.
namespace fx
{

class Pump
{
  public:
    // spburst-lint: hot
    void tick() { stats_.add(hTicks_, 1.0); }

    void finalize(const char *name)
    {
        stats_.set("pump.final", 1.0); // cold: report assembly
        stats_.set(name, 0.0);         // dynamic key, nothing to intern
    }

  private:
    StatSet stats_;
    StatHandle hTicks_ = stats_.intern("pump.ticks");
};

} // namespace fx
