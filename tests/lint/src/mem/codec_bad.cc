// Fixture: codec-symmetry — writeHeader puts U64,U32 but readHeader
// gets U64,U64 (width mismatch at field 2); writeBody emits three
// fields but readBody consumes two (count mismatch).
namespace fx
{

class Checkpoint
{
  public:
    void writeHeader() { putU64(magic_); putU32(count_); }
    void readHeader()
    {
        magic_ = getU64();
        count_ = getU64();
    }

    void writeBody() { putU64(a_); putU64(b_); putU32(crc_); }
    void readBody()
    {
        a_ = getU64();
        b_ = getU64();
    }

  private:
    unsigned long magic_ = 0;
    unsigned count_ = 0;
    unsigned long a_ = 0;
    unsigned long b_ = 0;
    unsigned crc_ = 0;
};

} // namespace fx
