// Fixture: snapshot-coverage — 'stats_' is neither read in the
// snapshot method nor written in the restore method and carries no
// state(host-only) annotation; 'seq_' is covered and must not fire.
namespace fx
{

class Detector
{
  public:
    int snapshotState() const { return seq_; }
    void restoreState(int s) { seq_ = s; }

  private:
    int seq_ = 0;
    int stats_ = 0;
};

} // namespace fx
