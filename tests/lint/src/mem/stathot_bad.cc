// Fixture: stat-hot-path — string-keyed StatSet accesses inside a
// hot function, through a member variable and through an accessor
// method; both re-resolve the name on every simulated event.
namespace fx
{

class Pump
{
  public:
    StatSet &stats() { return stats_; }

    // spburst-lint: hot
    void tick()
    {
        stats_.add("pump.ticks", 1.0);
        stats().set("pump.depth", 2.0);
    }

  private:
    StatSet stats_;
};

} // namespace fx
