// Fixture: capturing values, static locals, or iterators into
// long-lived members is safe — callback-lifetime must stay silent.
namespace fx
{

struct EventQueue
{
    template <typename F> void schedule(unsigned long when, F cb);
};

class Drainer
{
  public:
    void drainLater(EventQueue &eq)
    {
        int pending = 3;
        eq.schedule(4, [pending] { (void)pending; });
    }

    void pokeLater(EventQueue &eq)
    {
        static int generation = 0;
        int *g = &generation;
        eq.schedule(2, [g] { ++*g; });
    }

    void walkLater(EventQueue &eq)
    {
        auto it = batch_.begin();
        eq.schedule(1, [it] { (void)it; });
    }

  private:
    std::vector<int> batch_;
};

} // namespace fx
