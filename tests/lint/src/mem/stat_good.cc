// Fixture: stat-name lookups producible from the stat_defs.cc
// literals must pass — exact, via exact merge prefix, via dynamic
// merge prefix, via definition wildcard, and via a two-level chain.
namespace fx
{

inline double
readBack(const StatSet &stats)
{
    double v = stats.get("loads.misses");
    v += stats.get("mem.loads.hits");
    v += stats.get("core3.sb.occupancy.avg");
    v += stats.get("violations.tso.total");
    if (stats.has("mem.core1.loads.hits"))
        v += 1.0;
    return v;
}

} // namespace fx
