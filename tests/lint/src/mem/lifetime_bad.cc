// Fixture: callback-lifetime must flag value captures of a pointer to
// a stack local, an iterator into a stack-local container, and an
// init-capture of a local's address in scheduled callbacks.
namespace fx
{

struct EventQueue
{
    template <typename F> void schedule(unsigned long when, F cb);
};

inline void
drainLater(EventQueue &eq)
{
    int pending = 3;
    int *p = &pending;
    eq.schedule(4, [p] { --*p; });
}

inline void
walkLater(EventQueue &eq)
{
    std::vector<int> batch;
    auto it = batch.begin();
    eq.schedule(2, [it] { (void)it; });
}

inline void
captureLater(EventQueue &eq)
{
    long credit = 8;
    eq.schedule(1, [q = &credit] { (void)q; });
}

} // namespace fx
