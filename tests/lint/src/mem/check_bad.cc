// Fixture: the check-side-effect rule must flag increments,
// assignments, and mutating calls inside SPBURST_CHECK conditions.
namespace fx
{

struct Queue
{
    bool pop();
    int size() const;
};

inline void
audit(Queue &q, int &count)
{
    SPBURST_CHECK(Mshr, ++count > 0, "count must advance");
    SPBURST_CHECK(Mshr, (count = q.size()) >= 0, "sampled size");
    SPBURST_CHECK(Mshr, q.pop(), "queue must drain");
}

} // namespace fx
