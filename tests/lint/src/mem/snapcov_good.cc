// Fixture: snapshot-coverage negatives — covered members, an
// annotated host-only member (multi-line justification), and a
// partial-view class whose restore body is out of sight (skipped).
namespace fx
{

class Detector
{
  public:
    int snapshotState() const { return seq_; }
    void restoreState(int s) { seq_ = s; }

  private:
    int seq_ = 0;
    // spburst-lint: state(host-only) -- measurement counters are
    // excluded from architectural state by design
    int stats_ = 0;
};

class HeaderOnly
{
  public:
    int snapshotState() const { return seq_; }
    void restoreState(int s); // body not in this file set

  private:
    int seq_ = 0;
    int other_ = 0;
};

} // namespace fx
