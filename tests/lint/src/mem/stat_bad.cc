// Fixture: the stat-name rule must flag get/has literals no
// set()/merge() literal can produce (defined in stat_defs.cc).
namespace fx
{

inline double
readBack(const StatSet &stats)
{
    double v = stats.get("loads.hits");
    v += stats.get("loads.hitz");
    if (stats.has("sb.occupancy.max"))
        v += 1.0;
    return v;
}

} // namespace fx
