// Fixture: values derived from simulated state (sequence numbers,
// cycle counts) may reach StatSet writes; the same call shape as
// taint_bad.cc must stay silent when the source is deterministic.
namespace fx
{

struct StatSet
{
    void set(const char *key, double v);
};

class BurstMeter
{
  public:
    unsigned long fold(unsigned long seq)
    {
        return seq * 2654435761ul;
    }

    void recordKey(unsigned long k)
    {
        sum_.set("burst.key", static_cast<double>(k));
    }

    void onDrain(unsigned long seq)
    {
        unsigned long k = fold(seq);
        recordKey(k);
    }

  private:
    StatSet sum_;
};

} // namespace fx
