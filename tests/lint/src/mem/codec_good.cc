// Fixture: codec-symmetry negatives — a symmetric method pair, a
// save/load pair whose raw fwrite/fread ops line up, and an unpaired
// writer (nothing to compare against).
namespace fx
{

class Checkpoint
{
  public:
    void writeHeader() { putU64(magic_); putU32(count_); }
    void readHeader()
    {
        magic_ = getU64();
        count_ = getU32();
    }

    void save(File &f)
    {
        putU64(magic_);
        fwrite(&count_, sizeof(count_), 1, f.raw());
    }
    void load(File &f)
    {
        magic_ = getU64();
        fread(&count_, sizeof(count_), 1, f.raw());
    }

    void writeTrailer() { putU32(crc_); } // reader defined elsewhere

  private:
    unsigned long magic_ = 0;
    unsigned count_ = 0;
    unsigned crc_ = 0;
};

} // namespace fx
