// Fixture: read-only helpers inside SPBURST_CHECK are fine —
// check-purity-flow must stay silent.
namespace fx
{

class DrainAudit
{
  public:
    void audit(unsigned long seq)
    {
        SPBURST_CHECK(Sb, lastBurst() <= seq, "drain order monotone");
        SPBURST_CHECK(Sb, depthOf(seq) != 0, "burst must exist");
    }

  private:
    unsigned long lastBurst() const
    {
        return last_;
    }

    unsigned long depthOf(unsigned long seq) const
    {
        return seq - last_;
    }

    unsigned long last_ = 0;
};

} // namespace fx
