// Fixture: patterns the nondeterminism rule must NOT flag — accessor
// declarations and member calls named 'clock', and identifiers that
// merely contain a banned word.
namespace fx
{

struct SimClock;

class System
{
  public:
    SimClock &clock() { return clock_; }

  private:
    SimClock &clock_;
};

unsigned long long
readSimTime(System &sys)
{
    auto &clk = sys.clock();
    (void)clk;
    unsigned long long timeout = 0;
    return timeout;
}

} // namespace fx
