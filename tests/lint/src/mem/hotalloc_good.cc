// Fixture: hot-alloc negatives — a reserved local vector, a member
// reserved at construction (reserve seen project-wide), a deque
// (chunked, never relocates), and an allocation outside hot code.
namespace fx
{

class Pipe
{
  public:
    Pipe() { rob_.reserve(224); }

    // spburst-lint: hot
    void tick(const std::vector<int> &queue)
    {
        std::vector<int> out;
        out.reserve(queue.size());
        for (int r : queue)
            out.push_back(r);
        rob_.push_back(out.size());
        fifo_.push_back(1);
    }

    void coldRebuild() { scratch_.push_back(new Node()); }

  private:
    std::vector<unsigned long> rob_;
    std::deque<int> fifo_;
    std::vector<Node *> scratch_;
};

} // namespace fx

// A field reached through an object pointer counts as reserved when
// any file reserves it (slot-recycled MSHR-target pattern).
namespace fx2
{

struct Entry
{
    std::vector<int> targets;
};

class File
{
  public:
    File()
    {
        for (Entry &slot : slots_)
            slot.targets.reserve(8);
    }

    // spburst-lint: hot
    void merge(Entry *entry, int t) { entry->targets.push_back(t); }

  private:
    std::vector<Entry> slots_;
};

} // namespace fx2
