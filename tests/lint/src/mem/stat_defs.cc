// Fixture: StatSet definitions feeding the stat-name rule — exact
// names, a dynamic-suffix wildcard, an exact merge prefix, and a
// dynamic merge prefix.
namespace fx
{

inline void
publish(StatSet &stats, StatSet &core, int c)
{
    stats.set("loads.hits", 1.0);
    stats.set("loads.misses", 2.0);
    stats.set("sb.occupancy.avg", 0.5);
    stats.set(std::string("violations.") + name(), 1.0);
    stats.merge("mem.", core);
    stats.merge("core" + std::to_string(c) + ".", core);
}

} // namespace fx
