// Fixture: hot-alloc — an unreserved push_back in a range-for (gets
// the mechanical reserve fix), a bare new, and a make_unique, all in
// hot functions.
namespace fx
{

// spburst-lint: hot
inline std::vector<int>
collect(const std::vector<int> &queue)
{
    std::vector<int> out;
    for (int r : queue)
        out.push_back(r);
    return out;
}

// spburst-lint: hot
inline Node *
expand()
{
    auto spare = std::make_unique<Node>();
    pool.keep(std::move(spare));
    return new Node();
}

} // namespace fx

// Member-access receivers are excused only by a project-wide
// reserve(); this field has none.
namespace fx2
{

// spburst-lint: hot
inline void
merge(Entry *entry, int t)
{
    entry->waiters.push_back(t);
}

} // namespace fx2
