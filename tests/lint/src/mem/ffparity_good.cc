// Fixture: full tick/skip stat parity plus a justified ff-exempt
// write — ff-stat-parity must stay silent.
namespace fx
{

struct DrainStats
{
    unsigned long busyCycles = 0;
    unsigned long drained = 0;
    unsigned long bursts = 0;
};

class DrainMeter
{
  public:
    // spburst-lint: ff(tick)
    void tick()
    {
        ++stats_.busyCycles;
        applyDrain();
        // spburst-lint: ff-exempt -- bursts only start on new stores,
        // and a quiescent cycle accepts none
        ++stats_.bursts;
    }

    // spburst-lint: ff(skip)
    void skipCycles(unsigned long n)
    {
        stats_.busyCycles += n;
        stats_.drained += n;
    }

  private:
    void applyDrain()
    {
        ++stats_.drained;
    }

    DrainStats stats_;
};

} // namespace fx
