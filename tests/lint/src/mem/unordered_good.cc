// Fixture: the sorted-copy harvest pattern passes — the harvest loop
// carries a justified suppression (which must count as used), and
// ordered containers iterate freely.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace fx
{

inline int
sumSorted(const std::unordered_map<int, int> &table)
{
    std::vector<int> keys;
    keys.reserve(table.size());
    // spburst-lint: allow(unordered-iteration) -- key harvest only; sorted below
    for (const auto &[k, v] : table)
        keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    int sum = 0;
    for (int k : keys)
        sum += k;
    std::map<int, int> ordered;
    for (const auto &[k, v] : ordered)
        sum += v;
    return sum;
}

} // namespace fx
