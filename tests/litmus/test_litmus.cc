/**
 * @file
 * TSO litmus tests on the SMT core.
 *
 * The simulator is trace-driven and carries no data values, so litmus
 * outcomes are synthesized from the check::EventLog the core records:
 * a store becomes globally visible when its SB drain completes; a load
 * observes either a same-thread forwarding store or the latest visible
 * store to its address at its data-ready cycle (see
 * check/event_log.hh). Each classic pattern (SB, MP, LB, CoWW,
 * same-address forwarding) is replayed under several front-end skews
 * so the threads interleave differently, and every observed outcome
 * must be TSO-legal. Runs at --check=full, so the shadow-memory
 * forwarding oracle also cross-checks every forwarding decision made
 * along the way.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/check.hh"
#include "check/event_log.hh"
#include "common/clock.hh"
#include "cpu/smt_core.hh"
#include "mem/memory_system.hh"
#include "trace/source.hh"

namespace spburst
{
namespace
{

constexpr Addr kX = 0x1000; // two distinct cache blocks
constexpr Addr kY = 0x2000;

/** The writer a load observed, resolved through the event log. */
struct Observed
{
    bool fromStore = false; //!< false: the load saw the initial value
    int thread = -1;
    SeqNum seq = kInvalidSeqNum;
};

class LitmusTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saved_ = check::level();
        // Full checking: the forwarding oracle and coherence audits run
        // on every litmus interleaving for free.
        check::setLevel(check::Level::Full);
    }

    void TearDown() override { check::setLevel(saved_); }

    /** @p n front-end skew no-ops; prepended to a thread's program. */
    static std::vector<MicroOp>
    skew(unsigned n)
    {
        std::vector<MicroOp> ops;
        for (unsigned i = 0; i < n; ++i)
            ops.push_back(uops::alu(0xF00 + i));
        return ops;
    }

    static std::vector<MicroOp>
    concat(std::vector<MicroOp> head, const std::vector<MicroOp> &tail)
    {
        head.insert(head.end(), tail.begin(), tail.end());
        return head;
    }

    /** Run @p progs (one per hardware thread) to completion and drain
     *  every SB and the hierarchy, so all stores are visible. */
    void
    run(const std::vector<std::vector<MicroOp>> &progs)
    {
        clock_ = SimClock{};
        log_.clear();
        mem_ = std::make_unique<MemorySystem>(MemSystemParams::tableI(1),
                                              &clock_);
        sources_.clear();
        ptrs_.clear();
        lens_.clear();
        for (const auto &p : progs) {
            lens_.push_back(p.size());
            sources_.push_back(
                std::make_unique<VectorSource>(p, /*loop=*/false,
                                               "litmus"));
            ptrs_.push_back(sources_.back().get());
        }
        smt_ = std::make_unique<SmtCore>(CoreConfig{},
                                         static_cast<int>(progs.size()),
                                         &clock_, &mem_->l1d(0), ptrs_);
        smt_->setEventLog(&log_);

        const Cycle limit = clock_.now + 200'000;
        auto committed_all = [&] {
            for (int t = 0; t < smt_->threads(); ++t)
                if (smt_->committed(t) < lens_[t])
                    return false;
            return true;
        };
        auto drained = [&] {
            if (!clock_.events.empty())
                return false;
            for (int t = 0; t < smt_->threads(); ++t)
                if (smt_->storeBuffer(t).size() != 0)
                    return false;
            return true;
        };
        while ((!committed_all() || !drained()) && clock_.now < limit) {
            clock_.tick();
            smt_->tick();
        }
        ASSERT_TRUE(committed_all()) << "litmus program did not finish";
        ASSERT_TRUE(drained()) << "stores did not all become visible";
    }

    /** The (only) load of @p thread to @p addr. */
    const check::MemEvent *
    loadEvent(int thread, Addr addr) const
    {
        for (const auto &e : log_.events())
            if (e.kind == check::MemEvent::Kind::LoadObserved &&
                e.thread == thread && e.addr == addr)
                return &e;
        return nullptr;
    }

    /** StoreVisible events of @p thread to @p addr, in log order. */
    std::vector<const check::MemEvent *>
    storesVisible(int thread, Addr addr) const
    {
        std::vector<const check::MemEvent *> out;
        for (const auto &e : log_.events())
            if (e.kind == check::MemEvent::Kind::StoreVisible &&
                e.thread == thread && e.addr == addr)
                out.push_back(&e);
        return out;
    }

    Observed
    observed(int thread, Addr addr) const
    {
        const check::MemEvent *load = loadEvent(thread, addr);
        EXPECT_NE(load, nullptr) << "no load event for thread " << thread;
        Observed o;
        if (load)
            o.fromStore = log_.observedWriter(*load, &o.thread, &o.seq);
        return o;
    }

    SimClock clock_;
    check::EventLog log_;
    std::unique_ptr<MemorySystem> mem_;
    std::vector<std::unique_ptr<VectorSource>> sources_;
    std::vector<TraceSource *> ptrs_;
    std::vector<std::size_t> lens_;
    std::unique_ptr<SmtCore> smt_;

  private:
    check::Level saved_;
};

TEST_F(LitmusTest, SameAddressForwarding)
{
    // T0: St x; Ld x  — the load must observe its own thread's store,
    // never the initial memory value (TSO read-own-write).
    for (unsigned s : {0u, 1u, 3u}) {
        run({concat(skew(s), {uops::store(0x10, kX), uops::load(0x14, kX)})});
        const Observed o = observed(0, kX);
        ASSERT_TRUE(o.fromStore) << "load missed its own store";
        EXPECT_EQ(o.thread, 0);
        const auto st = storesVisible(0, kX);
        ASSERT_EQ(st.size(), 1u);
        EXPECT_EQ(o.seq, st[0]->seq);
    }
}

TEST_F(LitmusTest, CoWWDrainsInProgramOrder)
{
    // Two same-address stores of one thread must become visible in
    // program order (coherence order == program order, TSO CoWW).
    run({{uops::store(0x10, kX), uops::alu(0x14),
          uops::store(0x18, kX)}});
    const auto st = storesVisible(0, kX);
    ASSERT_EQ(st.size(), 2u);
    EXPECT_LT(st[0]->seq, st[1]->seq);
    EXPECT_LT(st[0]->cycle, st[1]->cycle)
        << "younger same-address store became visible first";
}

TEST_F(LitmusTest, MessagePassingForbiddenOutcomeNeverOccurs)
{
    // T0: St x=1; St y=1.   T1: Ld y; Ld x (address-dependent).
    // Forbidden under TSO: T1 sees the y-store but stale x. The
    // address dependence orders T1's loads; the SB's in-order drain
    // orders T0's stores.
    for (unsigned s0 : {0u, 2u, 4u, 7u}) {
        for (unsigned s1 : {0u, 3u, 5u}) {
            run({concat(skew(s0), {uops::store(0x10, kX),
                                   uops::store(0x14, kY)}),
                 concat(skew(s1),
                        {uops::load(0x20, kY),
                         uops::load(0x24, kX, 8, /*addrSrc=*/1)})});
            const Observed oy = observed(1, kY);
            if (!oy.fromStore)
                continue; // T1 ran ahead of the message: legal
            EXPECT_EQ(oy.thread, 0);
            const Observed ox = observed(1, kX);
            EXPECT_TRUE(ox.fromStore && ox.thread == 0)
                << "skew (" << s0 << "," << s1 << "): saw y=1 but "
                << "stale x — store->store or load->load reordering";
        }
    }
}

TEST_F(LitmusTest, LoadBufferingForbiddenOutcomeNeverOccurs)
{
    // T0: Ld x; St y.   T1: Ld y; St x.  Both loads observing the
    // other thread's store would need stores to pass their own
    // program-earlier loads — forbidden under TSO (no St->Ld
    // reordering backwards).
    for (unsigned s0 : {0u, 2u, 5u}) {
        for (unsigned s1 : {0u, 1u, 4u}) {
            run({concat(skew(s0), {uops::load(0x10, kX),
                                   uops::store(0x14, kY)}),
                 concat(skew(s1), {uops::load(0x20, kY),
                                   uops::store(0x24, kX)})});
            const Observed ox = observed(0, kX);
            const Observed oy = observed(1, kY);
            EXPECT_FALSE(ox.fromStore && oy.fromStore)
                << "skew (" << s0 << "," << s1
                << "): both loads saw the other thread's later store";
        }
    }
}

TEST_F(LitmusTest, StoreBufferingRelaxationIsVisible)
{
    // T0: St x; Ld y.   T1: St y; Ld x.  TSO *allows* both loads to
    // see the initial value (the store-buffering relaxation this whole
    // paper is about), and the harness must be able to exhibit it. To
    // make the window deterministic, each thread first warms the line
    // the *other* thread will load (the L1D is shared across SMT
    // threads) plus its own DTLB entry for the page it loads from (the
    // DTLB is per-thread, so a same-page touch of a *different* block
    // keeps loadEvent() unique), and each store's data hangs off a
    // divide: the L1-hit loads complete well before either store can
    // commit, let alone drain. Any observed writer must still be the
    // other thread's (only) store to that address.
    auto prog = [this](Addr warm, Addr st, Addr ld, unsigned s) {
        std::vector<MicroOp> p{uops::load(0x30, warm),
                               uops::load(0x34, ld + kBlockSize)};
        // Enough filler to overlap the warming loads' DRAM round trip
        // (the per-thread ROB holds it back until the loads complete).
        for (unsigned i = 0; i < 300 + s; ++i)
            p.push_back(uops::alu(0x800 + i));
        MicroOp div;
        div.pc = 0x40;
        div.cls = OpClass::IntDiv;
        div.hasDest = true;
        p.push_back(div);
        p.push_back(uops::store(0x44, st, 8, /*dataSrc=*/1));
        p.push_back(uops::load(0x48, ld));
        return p;
    };
    unsigned both_initial = 0, runs = 0;
    for (unsigned s0 : {0u, 2u, 6u}) {
        for (unsigned s1 : {0u, 3u}) {
            run({prog(kX, kX, kY, s0), prog(kY, kY, kX, s1)});
            ++runs;
            const Observed oy = observed(0, kY);
            const Observed ox = observed(1, kX);
            if (oy.fromStore) {
                EXPECT_EQ(oy.thread, 1);
            }
            if (ox.fromStore) {
                EXPECT_EQ(ox.thread, 0);
            }
            if (!oy.fromStore && !ox.fromStore)
                ++both_initial;
        }
    }
    EXPECT_GT(both_initial, 0u)
        << "r1=r2=0 never occurred in " << runs
        << " runs — the SB is not actually buffering stores";
}

} // namespace
} // namespace spburst
