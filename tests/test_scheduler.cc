/**
 * @file
 * Calendar-queue scheduler unit tests and the scheduler/fast-forward
 * differential determinism suite.
 *
 * The calendar queue must be observationally identical to the legacy
 * binary heap: same (cycle, schedule-id) execution order, including
 * bucket wraparound, far-future overflow, overdue scheduling and
 * events scheduled mid-drain. The differential suite then asserts the
 * strongest system-level property: byte-identical sorted statistics
 * reports across {legacy heap, calendar} x {fast-forward on, off} and
 * across checking levels.
 */

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.hh"
#include "common/event_queue.hh"
#include "sim/system.hh"

using namespace spburst;

namespace
{

/** Both implementations, for tests that must hold for each. */
const SchedulerKind kKinds[] = {SchedulerKind::Calendar,
                                SchedulerKind::LegacyHeap};

} // namespace

TEST(CalendarQueue, BucketWraparound)
{
    // Same bucket index (cycle % 256) used across several wheel turns;
    // order must stay strictly by cycle.
    EventQueue q(SchedulerKind::Calendar);
    std::vector<Cycle> order;
    Cycle cursor = 0;
    for (int turn = 0; turn < 4; ++turn) {
        const Cycle when = 10 + static_cast<Cycle>(turn) * 256;
        // Advance the drained horizon so each schedule lands within the
        // wheel span (mirrors the simulator's cycle-by-cycle advance).
        q.runUntil(cursor);
        q.schedule(when, [&order, when] { order.push_back(when); });
        cursor = when;
    }
    q.runUntil(cursor);
    EXPECT_EQ(order, (std::vector<Cycle>{10, 266, 522, 778}));
    EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, FarFutureOverflow)
{
    // Events far beyond the 256-cycle wheel span (e.g. a congested DRAM
    // channel) take the overflow heap and still run at the right cycle.
    EventQueue q(SchedulerKind::Calendar);
    std::vector<Cycle> order;
    for (Cycle when : {100'000, 5, 70'000, 300, 256, 99'999})
        q.schedule(when, [&order, when] { order.push_back(when); });
    EXPECT_EQ(q.nextEventCycle(), 5u);
    q.runUntil(100'000);
    EXPECT_EQ(order,
              (std::vector<Cycle>{5, 256, 300, 70'000, 99'999, 100'000}));
}

TEST(CalendarQueue, SameCycleFifoAcrossBucketAndOverflow)
{
    // Interleave near (bucket) and far (overflow) schedules for one
    // cycle; execution must follow schedule order, not storage.
    EventQueue q(SchedulerKind::Calendar);
    std::vector<int> order;
    const Cycle target = 500; // > 256 from cycle 0: first two overflow
    q.schedule(target, [&] { order.push_back(0); });
    q.schedule(target, [&] { order.push_back(1); });
    q.runUntil(300); // target now within the wheel span
    q.schedule(target, [&] { order.push_back(2); });
    q.schedule(target, [&] { order.push_back(3); });
    q.runUntil(target);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(CalendarQueue, OverdueSchedulingRunsFirst)
{
    // Scheduling at or before the drained horizon must still execute,
    // before anything later (legacy-heap semantics).
    EventQueue q(SchedulerKind::Calendar);
    q.runUntil(100);
    std::vector<int> order;
    q.schedule(150, [&] { order.push_back(150); });
    q.schedule(50, [&] { order.push_back(50); });
    q.schedule(100, [&] { order.push_back(100); });
    EXPECT_EQ(q.nextEventCycle(), 50u);
    q.runUntil(150);
    EXPECT_EQ(order, (std::vector<int>{50, 100, 150}));
}

TEST(CalendarQueue, NextEventCycleTracksScheduleAndConsumption)
{
    EventQueue q(SchedulerKind::Calendar);
    EXPECT_EQ(q.nextEventCycle(), kNeverCycle);
    q.schedule(1000, [] {});
    EXPECT_EQ(q.nextEventCycle(), 1000u);
    q.schedule(40, [] {});
    EXPECT_EQ(q.nextEventCycle(), 40u);
    q.runUntil(40);
    EXPECT_EQ(q.nextEventCycle(), 1000u);
    q.runUntil(1000);
    EXPECT_EQ(q.nextEventCycle(), kNeverCycle);
    EXPECT_EQ(q.executedEvents(), 2u);
}

TEST(CalendarQueue, OccupancyBitmapSkipsSilentSpans)
{
    // One event per occupancy word of the wheel (bits 0..63, 64..127,
    // 128..191, 192..255): the silent-span skip must land on each in
    // order, across several wheel turns, with cascaded rescheduling
    // from inside a drained cycle.
    EventQueue q(SchedulerKind::Calendar);
    std::vector<Cycle> order;
    std::vector<Cycle> targets;
    for (Cycle base : {Cycle{0}, Cycle{256}, Cycle{512}})
        for (Cycle slot : {Cycle{3}, Cycle{77}, Cycle{140}, Cycle{201}})
            targets.push_back(base + slot);
    // Schedule the first; each event schedules its successor (always
    // within the 255-cycle horizon of its own cycle or handled by a
    // later wheel turn via intermediate hops).
    std::function<void(std::size_t)> arm = [&](std::size_t k) {
        order.push_back(targets[k]);
        if (k + 1 < targets.size()) {
            // Hop in <=200-cycle steps so every reschedule stays
            // within the wheel span.
            Cycle next = targets[k + 1];
            q.schedule(next, [&arm, k] { arm(k + 1); });
        }
    };
    q.schedule(targets[0], [&arm] { arm(0); });
    q.runUntil(1000);
    EXPECT_EQ(order, targets);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextEventCycle(), kNeverCycle);
}

TEST(CalendarQueue, NextEventCycleAcrossWheelWrapBoundary)
{
    // The bitmap scan starts mid-word when (cursor+1) % 256 != 0 and
    // must wrap: park the cursor just short of a boundary, then
    // schedule behind and ahead of the start slot.
    EventQueue q(SchedulerKind::Calendar);
    q.runUntil(200); // start slot 201: bits 201..255, then 0..200
    q.schedule(450, [] {}); // bucket 194 < start slot: wrap partial word
    EXPECT_EQ(q.nextEventCycle(), 450u);
    q.schedule(210, [] {}); // bucket 210 >= start slot: first word
    EXPECT_EQ(q.nextEventCycle(), 210u);
    q.runUntil(210);
    EXPECT_EQ(q.nextEventCycle(), 450u);
    q.runUntil(460);
    EXPECT_TRUE(q.empty());
}

TEST(Scheduler, ScheduledDuringDrainKeepsFifo)
{
    for (SchedulerKind kind : kKinds) {
        EventQueue q(kind);
        std::vector<int> order;
        // Event A (id 0) schedules D (id 3) at the same cycle; B and C
        // (ids 1, 2) are already queued. Required order: A B C D.
        q.schedule(9, [&] {
            order.push_back(0);
            q.schedule(9, [&] { order.push_back(3); });
        });
        q.schedule(9, [&] { order.push_back(1); });
        q.schedule(9, [&] { order.push_back(2); });
        q.runUntil(9);
        EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}))
            << schedulerKindName(kind);
    }
}

TEST(Scheduler, MoveOnlyCallbacksPopWithoutCopying)
{
    // The pre-fix queue copied each Event (std::function included) out
    // of the heap before pop(). Callbacks are now move-only, so a
    // unique_ptr capture compiles and survives the pop on both
    // implementations — a copy anywhere would fail to compile.
    for (SchedulerKind kind : kKinds) {
        EventQueue q(kind);
        int sum = 0;
        for (int i = 1; i <= 4; ++i) {
            auto payload = std::make_unique<int>(i);
            q.schedule(static_cast<Cycle>(i),
                       [&sum, p = std::move(payload)] { sum += *p; });
        }
        q.runUntil(4);
        EXPECT_EQ(sum, 10) << schedulerKindName(kind);
    }
}

TEST(Scheduler, InterleavedRunUntilMatchesHeapOrder)
{
    // Drive both implementations through an identical irregular
    // schedule/drain sequence; the observed order must match exactly.
    std::vector<std::pair<SchedulerKind, std::vector<Cycle>>> runs;
    for (SchedulerKind kind : kKinds) {
        EventQueue q(kind);
        std::vector<Cycle> order;
        auto record = [&order](Cycle c) {
            return [&order, c] { order.push_back(c); };
        };
        std::uint64_t x = 12345;
        Cycle now = 0;
        for (int step = 0; step < 2000; ++step) {
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
            const Cycle delay = (x >> 33) % 600; // crosses the wheel
            const Cycle when = now + delay;
            q.schedule(when, record(when));
            if (step % 3 == 0) {
                now += (x >> 20) % 64;
                q.runUntil(now);
            }
        }
        q.runUntil(now + 1000);
        EXPECT_TRUE(q.empty());
        runs.emplace_back(kind, std::move(order));
    }
    EXPECT_EQ(runs[0].second, runs[1].second);
}

// ---------------------------------------------------------------------
// Differential determinism: scheduler x fast-forward x check level
// ---------------------------------------------------------------------

namespace
{

/** Render a run's full stats as sorted "name = value" lines. */
std::string
sortedReport(const SimResult &r)
{
    std::map<std::string, double> sorted;
    const StatSet stats = r.toStatSet();
    for (const auto &[name, value] : stats.entries())
        sorted[name] = value;
    std::ostringstream os;
    os.precision(17);
    for (const auto &[name, value] : sorted)
        os << name << " = " << value << "\n";
    return os.str();
}

std::string
runOnce(const std::string &workload, SchedulerKind scheduler,
        bool fast_forward, check::Level level)
{
    const check::Level saved = check::level();
    check::setLevel(level);
    SystemConfig cfg;
    cfg.workload = workload;
    cfg.useSpb = true;
    cfg.maxUopsPerCore = 20'000;
    cfg.scheduler = scheduler;
    cfg.fastForward = fast_forward;
    System sys(cfg);
    const SimResult r = sys.run();
    if (!fast_forward) {
        EXPECT_EQ(sys.fastForwardedCycles(), 0u);
    }
    check::setLevel(saved);
    return sortedReport(r);
}

} // namespace

TEST(SchedulerDifferential, ByteIdenticalStatsAcrossHotPathModes)
{
    // The paper-facing configurations must be bit-identical no matter
    // how the host hot path is configured. mcf is the most memory-bound
    // SPEC workload (deep fast-forward), x264 the most compute-bound
    // (barely any), dedup exercises the PARSEC generator.
    for (const std::string w : {"x264", "mcf", "dedup"}) {
        const std::string ref = runOnce(w, SchedulerKind::LegacyHeap,
                                        false, check::Level::Fast);
        EXPECT_EQ(ref, runOnce(w, SchedulerKind::Calendar, false,
                               check::Level::Fast))
            << w << ": calendar queue changed results";
        EXPECT_EQ(ref, runOnce(w, SchedulerKind::Calendar, true,
                               check::Level::Fast))
            << w << ": fast-forward changed results";
        EXPECT_EQ(ref, runOnce(w, SchedulerKind::LegacyHeap, true,
                               check::Level::Fast))
            << w << ": fast-forward (legacy queue) changed results";
    }
}

TEST(SchedulerDifferential, ByteIdenticalStatsAcrossCheckLevels)
{
    // Checking levels must not interact with the new hot path: the
    // reported statistics (check.* counters excluded, as they count
    // checker activity itself) stay byte-identical under off/fast/full
    // with fast-forward enabled.
    auto strip_check_stats = [](const std::string &report) {
        std::istringstream is(report);
        std::ostringstream os;
        std::string line;
        while (std::getline(is, line))
            if (line.rfind("check.", 0) != 0)
                os << line << "\n";
        return os.str();
    };
    const std::string off =
        strip_check_stats(runOnce("mcf", SchedulerKind::Calendar, true,
                                  check::Level::Off));
    EXPECT_EQ(off, strip_check_stats(runOnce(
                       "mcf", SchedulerKind::Calendar, true,
                       check::Level::Fast)));
    EXPECT_EQ(off, strip_check_stats(runOnce(
                       "mcf", SchedulerKind::Calendar, true,
                       check::Level::Full)));
}
