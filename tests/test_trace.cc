/**
 * @file
 * Unit tests for the trace substrate: uop factories, segment
 * generators, workload programs and the profile registry.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hh"
#include "trace/program.hh"
#include "trace/segments.hh"
#include "trace/uop.hh"
#include "trace/workloads.hh"

namespace spburst
{
namespace
{

// ---------------------------------------------------------------------
// VectorSource replay and post-exhaustion filler
// ---------------------------------------------------------------------

TEST(VectorSource, LoopModeRepeatsTheSequence)
{
    VectorSource src({uops::alu(0x100), uops::load(0x104, 0x4000)},
                     /*loop=*/true);
    for (int round = 0; round < 3; ++round) {
        EXPECT_EQ(src.next().pc, 0x100u);
        EXPECT_EQ(src.next().pc, 0x104u);
    }
    EXPECT_EQ(src.produced(), 6u);
}

TEST(VectorSource, NonLoopFillerIsAnInertNop)
{
    // After exhaustion a non-looping source pads with IntAlu no-ops.
    // The filler must be inert: no dependences, no destination, no
    // memory access, no branch — anything else would perturb the core
    // state the test meant to freeze.
    VectorSource src({uops::store(0x100, 0x4000)}, /*loop=*/false);
    EXPECT_EQ(src.next().cls, OpClass::Store);
    for (int i = 0; i < 4; ++i) {
        const MicroOp nop = src.next();
        EXPECT_EQ(nop.cls, OpClass::IntAlu);
        EXPECT_EQ(nop.pc, 0xdead0000u) << "filler pc marks padding";
        EXPECT_EQ(nop.srcDist1, 0);
        EXPECT_EQ(nop.srcDist2, 0);
        EXPECT_FALSE(nop.hasDest);
        EXPECT_FALSE(nop.mispredicted);
    }
    EXPECT_EQ(src.produced(), 5u) << "fillers count as produced uops";
}

// ---------------------------------------------------------------------
// uop factories
// ---------------------------------------------------------------------

TEST(Uops, FactoriesSetFields)
{
    const MicroOp a = uops::alu(0x100, 2, 3);
    EXPECT_EQ(a.cls, OpClass::IntAlu);
    EXPECT_TRUE(a.hasDest);
    EXPECT_EQ(a.srcDist1, 2);
    EXPECT_EQ(a.srcDist2, 3);

    const MicroOp l = uops::load(0x104, 0x4000, 4, 1);
    EXPECT_EQ(l.cls, OpClass::Load);
    EXPECT_EQ(l.addr, 0x4000u);
    EXPECT_EQ(l.size, 4);
    EXPECT_TRUE(l.hasDest);

    const MicroOp s = uops::store(0x108, 0x8000, 8, 1, Region::Memset);
    EXPECT_EQ(s.cls, OpClass::Store);
    EXPECT_FALSE(s.hasDest);
    EXPECT_EQ(s.region, Region::Memset);

    const MicroOp b = uops::branch(0x10c, true, 1);
    EXPECT_EQ(b.cls, OpClass::Branch);
    EXPECT_TRUE(b.mispredicted);
}

TEST(Uops, ClassPredicatesAndNames)
{
    EXPECT_TRUE(isFloatOp(OpClass::FpMul));
    EXPECT_FALSE(isFloatOp(OpClass::IntMul));
    EXPECT_TRUE(isMemOp(OpClass::Load));
    EXPECT_TRUE(isMemOp(OpClass::Store));
    EXPECT_FALSE(isMemOp(OpClass::Branch));
    EXPECT_STREQ(opClassName(OpClass::FpDiv), "FpDiv");
    EXPECT_STREQ(regionName(Region::ClearPage), "clear_page");
}

// ---------------------------------------------------------------------
// StoreBurstSegment
// ---------------------------------------------------------------------

TEST(StoreBurst, CoversEveryByteOnce)
{
    StoreBurstSegment seg(0x10000, 1024, 8, Region::Memset, 0x400000);
    std::set<Addr> addrs;
    MicroOp op;
    while (seg.produce(op)) {
        if (op.cls == OpClass::Store)
            addrs.insert(op.addr);
    }
    EXPECT_EQ(addrs.size(), 128u); // 1024 / 8
    EXPECT_EQ(*addrs.begin(), 0x10000u);
    EXPECT_EQ(*addrs.rbegin(), 0x10000u + 1024 - 8);
}

TEST(StoreBurst, EmitsLoopOverhead)
{
    StoreBurstSegment seg(0x10000, 512, 8, Region::Memset, 0x400000);
    int stores = 0, alus = 0, branches = 0;
    MicroOp op;
    while (seg.produce(op)) {
        stores += op.cls == OpClass::Store;
        alus += op.cls == OpClass::IntAlu;
        branches += op.cls == OpClass::Branch;
    }
    EXPECT_EQ(stores, 64);
    EXPECT_EQ(alus, 8); // one per 8 stores
    EXPECT_EQ(branches, 8);
}

TEST(StoreBurst, ShuffledStillCoversEveryByte)
{
    StoreBurstSegment seg(0x10000, 1024, 8, Region::App, 0x400000, true);
    std::set<Addr> addrs;
    bool monotonic = true;
    Addr prev = 0;
    MicroOp op;
    while (seg.produce(op)) {
        if (op.cls != OpClass::Store)
            continue;
        addrs.insert(op.addr);
        monotonic &= op.addr >= prev;
        prev = op.addr;
    }
    EXPECT_EQ(addrs.size(), 128u);
    EXPECT_FALSE(monotonic) << "shuffled order must not be monotonic";
}

TEST(StoreBurst, ShuffledBlockDeltasStayTolerable)
{
    // The whole point of block-level detection: the shuffled *address*
    // stream still only ever moves 0 or +-1 blocks at a time.
    StoreBurstSegment seg(0x10000, 2048, 8, Region::App, 0x400000, true);
    Addr prev_block = blockNumber(0x10000);
    MicroOp op;
    while (seg.produce(op)) {
        if (op.cls != OpClass::Store)
            continue;
        const Addr blk = blockNumber(op.addr);
        const std::int64_t delta =
            static_cast<std::int64_t>(blk) -
            static_cast<std::int64_t>(prev_block);
        EXPECT_LE(delta, 2);
        EXPECT_GE(delta, -1);
        prev_block = blk;
    }
}

TEST(StoreBurst, RespectsStoreSize)
{
    StoreBurstSegment seg(0x20000, 256, 4, Region::Calloc, 0x400000);
    int stores = 0;
    MicroOp op;
    while (seg.produce(op))
        if (op.cls == OpClass::Store) {
            EXPECT_EQ(op.size, 4);
            ++stores;
        }
    EXPECT_EQ(stores, 64);
}

// ---------------------------------------------------------------------
// CopyBurstSegment
// ---------------------------------------------------------------------

TEST(CopyBurst, PairsLoadsWithDependentStores)
{
    CopyBurstSegment seg(0x100000, 0x200000, 256, 8, Region::Memcpy,
                         0x7f0000);
    MicroOp op;
    int loads = 0, stores = 0;
    MicroOp last;
    while (seg.produce(op)) {
        if (op.cls == OpClass::Load) {
            ++loads;
            EXPECT_EQ(op.addr, 0x100000u + (loads - 1) * 8);
        } else if (op.cls == OpClass::Store) {
            ++stores;
            EXPECT_EQ(op.addr, 0x200000u + (stores - 1) * 8);
            EXPECT_EQ(op.srcDist1, 1) << "store data comes from the load";
            EXPECT_EQ(last.cls, OpClass::Load);
        }
        last = op;
    }
    EXPECT_EQ(loads, 32);
    EXPECT_EQ(stores, 32);
}

// ---------------------------------------------------------------------
// Other segments
// ---------------------------------------------------------------------

TEST(StridedLoads, FollowsStride)
{
    StridedLoadSegment seg(0x1000, 64, 16, false, 0x410000);
    std::vector<Addr> addrs;
    MicroOp op;
    while (seg.produce(op))
        if (op.cls == OpClass::Load)
            addrs.push_back(op.addr);
    ASSERT_EQ(addrs.size(), 16u);
    for (std::size_t i = 0; i < addrs.size(); ++i)
        EXPECT_EQ(addrs[i], 0x1000u + i * 64);
}

TEST(StridedLoads, FpVariantUsesFpAdd)
{
    StridedLoadSegment seg(0x1000, 8, 8, true, 0x410000);
    bool saw_fp = false;
    MicroOp op;
    while (seg.produce(op))
        saw_fp |= op.cls == OpClass::FpAdd;
    EXPECT_TRUE(saw_fp);
}

TEST(PointerChase, LoadsDependOnPreviousLoad)
{
    Rng rng(3);
    PointerChaseSegment seg(0x100000, 1 << 20, 32, 0x420000, &rng);
    MicroOp op;
    int loads = 0;
    while (seg.produce(op)) {
        if (op.cls != OpClass::Load)
            continue;
        ++loads;
        if (loads > 1) {
            EXPECT_EQ(op.srcDist1, 2);
        }
        EXPECT_GE(op.addr, 0x100000u);
        EXPECT_LT(op.addr, 0x100000u + (1 << 20));
    }
    EXPECT_EQ(loads, 32);
}

TEST(AluChain, RespectsMix)
{
    Rng rng(5);
    AluChainSegment seg(2000, 1.0, 0.0, 0.0, 0x430000, &rng);
    MicroOp op;
    int fp = 0, total = 0;
    while (seg.produce(op)) {
        ++total;
        fp += isFloatOp(op.cls);
    }
    EXPECT_EQ(total, 2000);
    EXPECT_EQ(fp, total) << "fpFraction=1.0 must produce only FP ops";
}

TEST(BranchyLoads, EmitsLoadAluBranchTriples)
{
    Rng rng(7);
    BranchyLoadSegment seg(0x100000, 1 << 16, 50, 0.5, 0x440000, &rng);
    MicroOp op;
    int mispredicted = 0, branches = 0;
    OpClass expect = OpClass::Load;
    while (seg.produce(op)) {
        EXPECT_EQ(op.cls, expect);
        if (op.cls == OpClass::Load) {
            expect = OpClass::IntAlu;
        } else if (op.cls == OpClass::IntAlu) {
            expect = OpClass::Branch;
        } else {
            expect = OpClass::Load;
            ++branches;
            mispredicted += op.mispredicted;
        }
    }
    EXPECT_EQ(branches, 50);
    EXPECT_GT(mispredicted, 10);
    EXPECT_LT(mispredicted, 40);
}

TEST(ScatterStores, AddressesAreScattered)
{
    Rng rng(9);
    ScatterStoreSegment seg(0x100000, 1 << 20, 64, 0x450000, &rng);
    MicroOp op;
    std::set<Addr> blocks;
    while (seg.produce(op))
        if (op.cls == OpClass::Store)
            blocks.insert(blockNumber(op.addr));
    // Random addresses over 16K blocks: collisions should be rare.
    EXPECT_GT(blocks.size(), 55u);
}

// ---------------------------------------------------------------------
// WorkloadProgram
// ---------------------------------------------------------------------

TEST(Program, DeterministicUnderSeed)
{
    auto make = [] {
        auto p = std::make_unique<WorkloadProgram>("t", 123);
        p->addPhase(
            [](Rng &rng) {
                return std::make_unique<ScatterStoreSegment>(
                    0x1000, 1 << 16, 16, 0x100, &rng);
            },
            1.0);
        p->addPhase(
            [](Rng &rng) {
                return std::make_unique<AluChainSegment>(16, 0.5, 0.1,
                                                         0.0, 0x200, &rng);
            },
            1.0);
        return p;
    };
    auto a = make();
    auto b = make();
    for (int i = 0; i < 5000; ++i) {
        const MicroOp x = a->next();
        const MicroOp y = b->next();
        EXPECT_EQ(x.pc, y.pc);
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(static_cast<int>(x.cls), static_cast<int>(y.cls));
    }
}

TEST(Program, MixesPhases)
{
    WorkloadProgram p("mix", 1);
    p.addPhase(
        [](Rng &rng) {
            return std::make_unique<AluChainSegment>(8, 0.0, 0.0, 0.0,
                                                     0x100, &rng);
        },
        1.0);
    p.addPhase(
        [](Rng &rng) {
            return std::make_unique<ScatterStoreSegment>(0x1000, 1 << 16,
                                                         8, 0x200, &rng);
        },
        1.0);
    int alus = 0, stores = 0;
    for (int i = 0; i < 2000; ++i) {
        const MicroOp op = p.next();
        alus += op.cls == OpClass::IntAlu;
        stores += op.cls == OpClass::Store;
    }
    EXPECT_GT(alus, 100);
    EXPECT_GT(stores, 100);
}

// ---------------------------------------------------------------------
// Workload registry
// ---------------------------------------------------------------------

TEST(Workloads, RegistryNamesMatchPaper)
{
    const auto sb = sbBoundSpecNames();
    const std::set<std::string> expected{"bwaves", "cactuBSSN", "x264",
                                         "blender", "cam4", "deepsjeng",
                                         "fotonik3d", "roms"};
    EXPECT_EQ(std::set<std::string>(sb.begin(), sb.end()), expected);

    const auto parsec_sb = sbBoundParsecNames();
    const std::set<std::string> expected_parsec{"bodytrack", "dedup",
                                                "ferret", "x264_parsec"};
    EXPECT_EQ(std::set<std::string>(parsec_sb.begin(), parsec_sb.end()),
              expected_parsec);
}

TEST(Workloads, AllProfilesBuildAndProduce)
{
    for (const auto &name : allSpecNames()) {
        auto src = makeWorkload(name, 1);
        ASSERT_NE(src, nullptr);
        std::map<OpClass, int> mix;
        for (int i = 0; i < 5000; ++i)
            ++mix[src->next().cls];
        EXPECT_GT(mix[OpClass::Branch], 0) << name;
    }
}

TEST(Workloads, SbBoundProfilesAreStoreBurstHeavy)
{
    for (const auto &name : sbBoundSpecNames()) {
        auto src = makeWorkload(name, 1);
        int burst_stores = 0;
        for (int i = 0; i < 50000; ++i) {
            const MicroOp op = src->next();
            if (op.cls == OpClass::Store)
                burst_stores += op.region != Region::App || true;
        }
        EXPECT_GT(burst_stores, 1000)
            << name << " should carry significant store traffic";
    }
}

TEST(Workloads, ThreadsGetDisjointPrivateAddresses)
{
    const ProfileParams &p = findProfile("dedup");
    auto t0 = buildWorkload(p, 1, 0, 8);
    auto t1 = buildWorkload(p, 1, 1, 8);
    std::set<Addr> pages0, pages1;
    for (int i = 0; i < 20000; ++i) {
        const MicroOp a = t0->next();
        const MicroOp b = t1->next();
        if (isMemOp(a.cls))
            pages0.insert(pageNumber(a.addr));
        if (isMemOp(b.cls))
            pages1.insert(pageNumber(b.addr));
    }
    // Private pages must not collide; only the shared region overlaps.
    std::size_t shared_overlap = 0;
    for (Addr p0 : pages0)
        shared_overlap += pages1.count(p0);
    // All overlapping pages live in the fixed shared region.
    for (Addr p0 : pages0) {
        if (pages1.count(p0)) {
            EXPECT_GE(p0 << kPageShift, 0x7000'0000'0000ULL);
        }
    }
    (void)shared_overlap;
}

TEST(Workloads, UnknownProfileIsFatal)
{
    EXPECT_EXIT(findProfile("not-a-benchmark"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(Workloads, RegistrySizes)
{
    EXPECT_GE(allSpecNames().size(), 20u);
    EXPECT_GE(allParsecNames().size(), 10u);
}

} // namespace
} // namespace spburst
