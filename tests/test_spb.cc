/**
 * @file
 * Unit tests for the paper's contribution: the SPB detector, burst
 * computation, the Sec. IV-C dynamic-threshold variant, and the engine
 * integration with the L1D controller — including the running example
 * of the paper's Fig. 4.
 */

#include <gtest/gtest.h>

#include "common/clock.hh"
#include "common/rng.hh"
#include "core/spb.hh"
#include "mem/memory_system.hh"

namespace spburst
{
namespace
{

SpbParams
withN(unsigned n, bool dynamic = false)
{
    SpbParams p;
    p.checkInterval = n;
    p.dynamicThreshold = dynamic;
    return p;
}

// ---------------------------------------------------------------------
// computeBurst
// ---------------------------------------------------------------------

TEST(ComputeBurst, RemainingBlocksOfPageForwardOnly)
{
    // Store in block 0 of a page: 63 blocks remain.
    SpbBurst b = computeBurst(0x1000);
    EXPECT_EQ(b.firstBlock, 0x1040u);
    EXPECT_EQ(b.count, 63u);

    // Store in the middle.
    b = computeBurst(0x1000 + 32 * kBlockSize + 24);
    EXPECT_EQ(b.firstBlock, 0x1000u + 33 * kBlockSize);
    EXPECT_EQ(b.count, 31u);

    // Store in the last block: nothing remains (no page crossing).
    b = computeBurst(0x1fff);
    EXPECT_EQ(b.count, 0u);
}

// ---------------------------------------------------------------------
// Detector state machine (paper Sec. IV-A)
// ---------------------------------------------------------------------

TEST(SpbDetector, SameBlockDeltaKeepsCounter)
{
    SpbDetector d(withN(16));
    for (int i = 0; i < 8; ++i)
        d.onStoreCommit(0x1000 + i * 8, 8); // all in block 0
    EXPECT_EQ(d.satCounter(), 0u);
    EXPECT_EQ(d.storeCount(), 8u);
}

TEST(SpbDetector, ConsecutiveBlockDeltaIncrementsCounter)
{
    SpbDetector d(withN(16));
    d.onStoreCommit(0x1000, 8);
    d.onStoreCommit(0x1040, 8);
    d.onStoreCommit(0x1080, 8);
    EXPECT_EQ(d.satCounter(), 2u);
}

TEST(SpbDetector, NonUnitDeltaResetsCounter)
{
    SpbDetector d(withN(16));
    d.onStoreCommit(0x1000, 8);
    d.onStoreCommit(0x1040, 8);
    EXPECT_EQ(d.satCounter(), 1u);
    d.onStoreCommit(0x5000, 8); // jump
    EXPECT_EQ(d.satCounter(), 0u);
    d.onStoreCommit(0x1000, 8); // backward jump also resets
    EXPECT_EQ(d.satCounter(), 0u);
}

TEST(SpbDetector, CounterSaturatesAtFourBits)
{
    SpbDetector d(withN(64));
    for (int i = 0; i < 40; ++i)
        d.onStoreCommit(0x1000 + i * kBlockSize, 8);
    EXPECT_EQ(d.satCounter(), 15u) << "4-bit saturating counter";
}

TEST(SpbDetector, RunningExampleFig4)
{
    // The paper's running example: N=8, 64-bit stores to consecutive
    // addresses. Within one window the deltas are 0,...,0,1 — two
    // blocks touched — so the counter (1) equals N/8 (1) and a burst
    // fires for the rest of the page.
    SpbDetector d(withN(8));
    SpbBurst burst;
    for (Addr a = 0x10000; a < 0x10040; a += 8) { // T0..T7, block 0
        burst = d.onStoreCommit(a, 8);
        EXPECT_EQ(burst.count, 0u);
    }
    EXPECT_EQ(d.satCounter(), 0u);
    EXPECT_EQ(d.storeCount(), 8u); // count has reached N
    burst = d.onStoreCommit(0x10040, 8); // T8: block delta +1, check
    ASSERT_GT(burst.count, 0u);
    EXPECT_EQ(burst.firstBlock, 0x10080u);
    // The store hit block index 1 of the page -> 62 blocks remain.
    EXPECT_EQ(burst.count, 62u);
    EXPECT_EQ(d.stats().bursts, 1u);
    EXPECT_EQ(d.stats().windowChecks, 1u);
}

TEST(SpbDetector, WindowResetsAfterCheck)
{
    SpbDetector d(withN(8));
    for (int i = 0; i < 9; ++i) // check fires on the 9th commit
        d.onStoreCommit(0x1000 + i * 8, 8);
    EXPECT_EQ(d.storeCount(), 0u) << "store count resets every N";
    EXPECT_EQ(d.satCounter(), 0u) << "counter resets every N";
    EXPECT_EQ(d.stats().windowChecks, 1u);
}

TEST(SpbDetector, NoBurstWithoutContiguousPattern)
{
    SpbDetector d(withN(8));
    Rng rng(1);
    for (int i = 0; i < 64; ++i) {
        const SpbBurst b =
            d.onStoreCommit(0x1000 + rng.below(1 << 20) * 64, 8);
        EXPECT_EQ(b.count, 0u) << "random stores must not trigger SPB";
    }
    EXPECT_EQ(d.stats().bursts, 0u);
    EXPECT_EQ(d.stats().windowChecks, 7u); // one check per 9 commits
}

TEST(SpbDetector, N48FiresOnContiguous8ByteStores)
{
    SpbDetector d(withN(48));
    int bursts = 0;
    // 8-byte contiguous stores: a 48-store window plus its closing
    // commit always spans 6 block transitions, meeting N/8 = 6.
    for (int i = 0; i < 480; ++i) {
        if (d.onStoreCommit(0x40000 + i * 8, 8).count > 0)
            ++bursts;
    }
    EXPECT_GE(bursts, 1);
    EXPECT_EQ(d.stats().windowChecks, 9u); // one per 49 commits
}

TEST(SpbDetector, EndOfPageSuppressed)
{
    SpbDetector d(withN(8));
    // Contiguous stores whose closing commit lands in the last block
    // of a page: the check fires but no blocks remain to prefetch.
    const Addr page = 0x70000;
    const Addr last_block = page + kPageSize - 64;
    for (int i = 0; i < 8; ++i)
        d.onStoreCommit(last_block - 64 + i * 8, 8);
    const SpbBurst b = d.onStoreCommit(last_block, 8);
    EXPECT_EQ(b.count, 0u);
    EXPECT_EQ(d.stats().endOfPageSuppressed, 1u);
}

TEST(SpbDetector, StorageBitsMatchPaperBudget)
{
    // 58 (last block) + 4 (sat counter) + ceil(log2(N)) store count.
    EXPECT_EQ(SpbDetector(withN(31)).storageBits(), 58u + 4 + 5);
    EXPECT_EQ(SpbDetector(withN(48)).storageBits(), 58u + 4 + 6);
}

TEST(SpbDetector, InterleavedStoresStillDetected)
{
    // Compiler-shuffled order (roms-style): the stores inside each
    // block are reordered, but block-level deltas stay 0 / +1, so the
    // detector must still fire.
    SpbDetector d(withN(16));
    int bursts = 0;
    Addr base = 0x90000;
    // Write the page block by block, but shuffle the 8 stores inside
    // each block.
    for (int blk = 0; blk < 32; ++blk) {
        const int order[8] = {3, 1, 4, 0, 5, 7, 2, 6};
        for (int j = 0; j < 8; ++j) {
            const Addr a = base + blk * kBlockSize + order[j] * 8;
            if (d.onStoreCommit(a, 8).count > 0)
                ++bursts;
        }
    }
    EXPECT_GE(bursts, 1) << "intra-block shuffling must not defeat SPB";
}

TEST(SpbDetector, ContiguousStepAcrossAliasBoundary)
{
    // The last-block register is 58 bits wide, so block 2^58 - 1 is
    // followed by alias 0. A contiguous store stream crossing that
    // boundary must still read as delta +1: the delta has to be
    // reduced mod 2^58 just like the register contents, not computed
    // as a raw 64-bit difference (which would be 1 - 2^58).
    SpbDetector d(withN(16));
    const Addr top_block_addr = ~Addr{0} - (kBlockSize - 1);
    d.onStoreCommit(top_block_addr - kBlockSize, 8); // block 2^58 - 2
    d.onStoreCommit(top_block_addr, 8);              // block 2^58 - 1
    EXPECT_EQ(d.satCounter(), 1u);
    d.onStoreCommit(0x0, 8); // block aliases to 0: still contiguous
    EXPECT_EQ(d.satCounter(), 2u)
        << "a +1 step across the 58-bit alias boundary must count";
    EXPECT_EQ(d.lastBlock(), 0u);
}

TEST(SpbDetector, EndOfPageSuppressionCountsEachOccurrence)
{
    SpbDetector d(withN(8));
    // Two separate windows, each closing in the last block of a page:
    // both checks fire, both bursts have zero blocks left to request.
    for (Addr page : {Addr{0x70000}, Addr{0x90000}}) {
        const Addr last_block = page + kPageSize - kBlockSize;
        for (int i = 0; i < 8; ++i)
            d.onStoreCommit(last_block - kBlockSize + i * 8, 8);
        EXPECT_EQ(d.onStoreCommit(last_block, 8).count, 0u);
    }
    EXPECT_EQ(d.stats().endOfPageSuppressed, 2u);
    EXPECT_EQ(d.stats().bursts, 0u) << "a suppressed burst is no burst";
    EXPECT_EQ(d.stats().blocksRequested, 0u);
}

// ---------------------------------------------------------------------
// Dynamic-threshold variant (Sec. IV-C ablation)
// ---------------------------------------------------------------------

TEST(SpbDetectorDynamic, AdaptsThresholdToStoreSize)
{
    // With 32-byte stores, a block holds 2 stores: 16 contiguous
    // stores cover 8 blocks. The fixed N/8 threshold (2) fires; the
    // dynamic variant requires N/S with S = 2 -> threshold 8.
    SpbDetector fixed(withN(16, false));
    SpbDetector dyn(withN(16, true));
    int fixed_bursts = 0, dyn_bursts = 0;
    for (int i = 0; i < 64; ++i) {
        fixed_bursts += fixed.onStoreCommit(0xa0000 + i * 32, 32).count > 0;
        dyn_bursts += dyn.onStoreCommit(0xa0000 + i * 32, 32).count > 0;
    }
    EXPECT_GT(fixed_bursts, 0);
    EXPECT_GT(dyn_bursts, 0) << "dynamic variant still fires eventually";
}

TEST(SpbDetectorDynamic, EightByteStoresMatchFixedBehaviour)
{
    SpbDetector fixed(withN(48, false));
    SpbDetector dyn(withN(48, true));
    int ffire = 0, dfire = 0;
    for (int i = 0; i < 480; ++i) {
        ffire += fixed.onStoreCommit(0xb0000 + i * 8, 8).count > 0;
        dfire += dyn.onStoreCommit(0xb0000 + i * 8, 8).count > 0;
    }
    EXPECT_EQ(ffire, dfire);
}

// ---------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------

TEST(SpbEngine, TriggersBurstIntoL1Controller)
{
    SimClock clock;
    MemorySystem mem(MemSystemParams::tableI(1), &clock);
    SpbEngine engine(withN(8), &mem.l1d(0), 0);
    for (int i = 0; i < 64; ++i)
        engine.onStoreCommit(0x10000 + i * 8, 8, Region::Memset);
    EXPECT_GE(engine.stats().bursts, 1u);
    EXPECT_GT(mem.l1d(0).burstBacklog() + mem.l1d(0).stats().spbIssued,
              0u);
    // Run the clock: all requested blocks become owned.
    for (int i = 0; i < 2000; ++i)
        clock.tick();
    EXPECT_TRUE(mem.l1d(0).probeOwned(0x10000 + 10 * kBlockSize));
    EXPECT_TRUE(mem.l1d(0).probeOwned(0x10000 + 63 * kBlockSize));
    // But never past the page boundary.
    EXPECT_FALSE(mem.l1d(0).probeValid(0x11000));
}

TEST(SpbEngine, DetectorOnlyModeNeedsNoController)
{
    SpbEngine engine(withN(8), nullptr, 0);
    for (int i = 0; i < 64; ++i)
        engine.onStoreCommit(0x10000 + i * 8, 8, Region::App);
    EXPECT_GE(engine.stats().bursts, 1u);
}

} // namespace
} // namespace spburst
