/**
 * @file
 * Tests for the SMT core: static partitioning, fairness, the paper's
 * motivating effect (per-thread SB pressure grows with thread count)
 * and SPB's rescue of it.
 */

#include <gtest/gtest.h>

#include "common/clock.hh"
#include "cpu/smt_core.hh"
#include "mem/memory_system.hh"
#include "sim/system.hh"
#include "trace/workloads.hh"

namespace spburst
{
namespace
{

class SmtTest : public ::testing::Test
{
  protected:
    /** Build an SMT core running @p threads copies of @p workload. */
    void
    build(const std::string &workload, int threads,
          CoreConfig cfg = CoreConfig{})
    {
        mem = std::make_unique<MemorySystem>(MemSystemParams::tableI(1),
                                             &clock);
        traces.clear();
        trace_ptrs.clear();
        for (int t = 0; t < threads; ++t) {
            traces.push_back(
                buildWorkload(findProfile(workload), 1 + t, 0, 1));
            trace_ptrs.push_back(traces.back().get());
        }
        smt = std::make_unique<SmtCore>(cfg, threads, &clock,
                                        &mem->l1d(0), trace_ptrs);
    }

    void
    runUopsPerThread(std::uint64_t target, Cycle budget = 20'000'000)
    {
        const Cycle limit = clock.now + budget;
        while (smt->minCommitted() < target && clock.now < limit) {
            clock.tick();
            smt->tick();
        }
        ASSERT_GE(smt->minCommitted(), target) << "SMT made no progress";
    }

    SimClock clock;
    std::unique_ptr<MemorySystem> mem;
    std::vector<std::unique_ptr<TraceSource>> traces;
    std::vector<TraceSource *> trace_ptrs;
    std::unique_ptr<SmtCore> smt;
};

TEST_F(SmtTest, SbIsStaticallyPartitioned)
{
    build("x264", 4);
    EXPECT_EQ(smt->sbPerThread(), 14u) << "56 / 4 threads";
    build("x264", 2);
    EXPECT_EQ(smt->sbPerThread(), 28u);
    build("x264", 1);
    EXPECT_EQ(smt->sbPerThread(), 56u);
}

TEST_F(SmtTest, AllThreadsMakeFairProgress)
{
    build("blender", 4);
    runUopsPerThread(5'000);
    std::uint64_t lo = ~0ull, hi = 0;
    for (int t = 0; t < 4; ++t) {
        lo = std::min(lo, smt->committed(t));
        hi = std::max(hi, smt->committed(t));
    }
    // Threads run different workload seeds, so some imbalance is the
    // workload's, not the scheduler's; a starving scheduler would show
    // up as an order-of-magnitude gap.
    EXPECT_LT(static_cast<double>(hi), static_cast<double>(lo) * 2.5)
        << "round-robin sharing must not starve any thread";
}

TEST_F(SmtTest, Smt1MatchesSingleThreadBallpark)
{
    // One hardware thread on the SMT core should behave like the
    // plain Core within a modest factor (the arbitration adds a
    // little overhead but no structural change).
    build("cam4", 1);
    runUopsPerThread(20'000);
    const Cycle smt_cycles = clock.now;

    SystemConfig cfg =
        makeConfig("cam4", 56, StorePrefetchPolicy::AtCommit);
    cfg.maxUopsPerCore = 20'000;
    cfg.seed = 1;
    const SimResult r = runSystem(cfg);
    EXPECT_LT(static_cast<double>(smt_cycles),
              static_cast<double>(r.cycles) * 1.3);
    EXPECT_GT(static_cast<double>(smt_cycles),
              static_cast<double>(r.cycles) * 0.7);
}

TEST_F(SmtTest, SbPartitioningIsWhatHurtsSmt4)
{
    // The paper's Fig. 1 motivation, isolated on real SMT: the same
    // four threads run faster when each gets a full 56-entry SB
    // (sqSize=224 partitioned four ways) than with the statically
    // partitioned 14 entries each (sqSize=56). Everything else about
    // the two machines is identical.
    CoreConfig partitioned; // 56 total -> 14 per thread
    build("bwaves", 4, partitioned);
    runUopsPerThread(10'000);
    const Cycle small_sb = clock.now;
    std::uint64_t small_stalls = 0;
    for (int t = 0; t < 4; ++t)
        small_stalls += smt->stats(t).sbStalls();

    clock = SimClock{};
    CoreConfig generous;
    generous.params.sqSize = 224; // -> 56 per thread
    build("bwaves", 4, generous);
    runUopsPerThread(10'000);
    const Cycle big_sb = clock.now;
    std::uint64_t big_stalls = 0;
    for (int t = 0; t < 4; ++t)
        big_stalls += smt->stats(t).sbStalls();

    EXPECT_LT(big_sb, small_sb)
        << "a per-thread 56-entry SB must beat 14 entries per thread";
    EXPECT_LT(big_stalls, small_stalls);
}

TEST_F(SmtTest, SpbRescuesSmt4)
{
    CoreConfig ac;
    build("bwaves", 4, ac);
    runUopsPerThread(15'000);
    const Cycle base = clock.now;

    clock = SimClock{};
    CoreConfig spb;
    spb.useSpb = true;
    build("bwaves", 4, spb);
    runUopsPerThread(15'000);
    const Cycle with_spb = clock.now;

    EXPECT_LT(with_spb, base)
        << "SPB must recover SMT-4 store-buffer pressure";
}

TEST_F(SmtTest, DeterministicAcrossRuns)
{
    build("dedup", 2);
    runUopsPerThread(8'000);
    const Cycle a = clock.now;
    clock = SimClock{};
    build("dedup", 2);
    runUopsPerThread(8'000);
    EXPECT_EQ(a, clock.now);
}

TEST_F(SmtTest, WrongPathIsolatedPerThread)
{
    build("deepsjeng", 2);
    runUopsPerThread(10'000);
    for (int t = 0; t < 2; ++t) {
        EXPECT_GT(smt->stats(t).mispredicts, 0u);
        EXPECT_GT(smt->stats(t).wrongPathFetched, 0u);
    }
}

} // namespace
} // namespace spburst
