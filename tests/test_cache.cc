/**
 * @file
 * Unit tests for the structural cache pieces: tag array, MSHR file and
 * the DRAM model.
 */

#include <gtest/gtest.h>

#include "common/clock.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/mshr.hh"

namespace spburst
{
namespace
{

CacheGeometry
smallGeom()
{
    return CacheGeometry{4 * 1024, 4}; // 16 sets x 4 ways
}

TEST(CacheGeometry, SetCount)
{
    EXPECT_EQ(smallGeom().numSets(), 16u);
    EXPECT_EQ((CacheGeometry{32 * 1024, 8}.numSets()), 64u);
}

TEST(SetAssocCache, MissThenFillThenHit)
{
    SetAssocCache cache(smallGeom());
    EXPECT_EQ(cache.find(0x1000), nullptr);
    CacheBlk &victim = cache.victim(0x1000);
    cache.fill(victim, 0x1000, CohState::Exclusive);
    CacheBlk *blk = cache.find(0x1000);
    ASSERT_NE(blk, nullptr);
    EXPECT_EQ(blk->tag, 0x1000u);
    EXPECT_EQ(blk->state, CohState::Exclusive);
    EXPECT_EQ(cache.validCount(), 1u);
}

TEST(SetAssocCache, FindIsBlockGranular)
{
    SetAssocCache cache(smallGeom());
    cache.fill(cache.victim(0x1000), 0x1000, CohState::Shared);
    EXPECT_NE(cache.find(0x103f), nullptr);
    EXPECT_EQ(cache.find(0x1040), nullptr);
}

TEST(SetAssocCache, LruEviction)
{
    SetAssocCache cache(smallGeom());
    // Fill one set (same set index, different tags).
    const Addr set_stride = 16 * kBlockSize; // sets * blockSize
    std::vector<Addr> addrs;
    for (int i = 0; i < 4; ++i)
        addrs.push_back(0x1000 + i * set_stride);
    for (Addr a : addrs)
        cache.fill(cache.victim(a), a, CohState::Shared);
    EXPECT_EQ(cache.validCount(), 4u);

    // Touch the first one: it becomes MRU; victim must be the second.
    cache.touch(*cache.find(addrs[0]));
    CacheBlk &victim = cache.victim(0x1000 + 4 * set_stride);
    EXPECT_EQ(victim.tag, addrs[1]);
}

TEST(SetAssocCache, VictimPrefersInvalidFrames)
{
    SetAssocCache cache(smallGeom());
    cache.fill(cache.victim(0x1000), 0x1000, CohState::Modified);
    CacheBlk &victim = cache.victim(0x1000 + 16 * kBlockSize);
    EXPECT_EQ(victim.state, CohState::Invalid);
}

TEST(SetAssocCache, InvalidateReportsDirty)
{
    SetAssocCache cache(smallGeom());
    cache.fill(cache.victim(0x1000), 0x1000, CohState::Modified);
    cache.fill(cache.victim(0x2000), 0x2000, CohState::Shared);
    EXPECT_TRUE(cache.invalidate(0x1000));
    EXPECT_FALSE(cache.invalidate(0x2000));
    EXPECT_FALSE(cache.invalidate(0x3000)); // absent
    EXPECT_EQ(cache.validCount(), 0u);
}

TEST(SetAssocCache, FillResetsPrefetchMetadata)
{
    SetAssocCache cache(smallGeom());
    CacheBlk &frame = cache.victim(0x1000);
    frame.prefetched = true;
    frame.prefetchUsed = true;
    cache.fill(frame, 0x1000, CohState::Shared);
    EXPECT_FALSE(frame.prefetched);
    EXPECT_FALSE(frame.prefetchUsed);
}

TEST(CohState, OwnershipPredicate)
{
    EXPECT_FALSE(hasOwnership(CohState::Invalid));
    EXPECT_FALSE(hasOwnership(CohState::Shared));
    EXPECT_TRUE(hasOwnership(CohState::Exclusive));
    EXPECT_TRUE(hasOwnership(CohState::Modified));
    EXPECT_STREQ(cohStateName(CohState::Modified), "M");
}

TEST(MemCmd, PredicatesAndNames)
{
    EXPECT_TRUE(isPrefetch(MemCmd::StorePF));
    EXPECT_TRUE(isPrefetch(MemCmd::SpbPF));
    EXPECT_TRUE(isPrefetch(MemCmd::ReadPF));
    EXPECT_FALSE(isPrefetch(MemCmd::ReadReq));
    EXPECT_TRUE(wantsOwnership(MemCmd::WriteOwnReq));
    EXPECT_TRUE(wantsOwnership(MemCmd::SpbPF));
    EXPECT_FALSE(wantsOwnership(MemCmd::ReadPF));
    EXPECT_TRUE(isStorePrefetch(MemCmd::SpbPF));
    EXPECT_FALSE(isStorePrefetch(MemCmd::ReadPF));
    EXPECT_STREQ(memCmdName(MemCmd::SpbPF), "SpbPF");
}

// ---------------------------------------------------------------------
// MSHR file
// ---------------------------------------------------------------------

TEST(Mshr, AllocateFindDeallocate)
{
    MshrFile mshr(4);
    EXPECT_EQ(mshr.find(0x1000), nullptr);
    MshrEntry *e = mshr.allocate(0x1010, MemCmd::ReadReq, 5);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->blockAddr, 0x1000u); // block aligned
    EXPECT_EQ(e->allocCycle, 5u);
    EXPECT_FALSE(e->ownershipRequested);
    EXPECT_EQ(mshr.find(0x1020), e); // same block
    mshr.deallocate(0x1000);
    EXPECT_EQ(mshr.find(0x1000), nullptr);
}

TEST(Mshr, OwnershipFlagTracksCommand)
{
    MshrFile mshr(4);
    EXPECT_TRUE(
        mshr.allocate(0x1000, MemCmd::WriteOwnReq, 0)->ownershipRequested);
    EXPECT_TRUE(mshr.allocate(0x2000, MemCmd::SpbPF, 0)->ownershipRequested);
    EXPECT_FALSE(
        mshr.allocate(0x3000, MemCmd::ReadPF, 0)->ownershipRequested);
}

TEST(Mshr, CapacityEnforced)
{
    MshrFile mshr(2);
    EXPECT_NE(mshr.allocate(0x1000, MemCmd::ReadReq, 0), nullptr);
    EXPECT_NE(mshr.allocate(0x2000, MemCmd::ReadReq, 0), nullptr);
    EXPECT_TRUE(mshr.full());
    EXPECT_EQ(mshr.allocate(0x3000, MemCmd::ReadReq, 0), nullptr);
    mshr.deallocate(0x1000);
    EXPECT_FALSE(mshr.full());
    EXPECT_NE(mshr.allocate(0x3000, MemCmd::ReadReq, 0), nullptr);
}

TEST(Mshr, TargetsAccumulate)
{
    MshrFile mshr(2);
    MshrEntry *e = mshr.allocate(0x1000, MemCmd::ReadReq, 0);
    e->targets.push_back(MshrTarget{});
    e->targets.push_back(MshrTarget{true, false, false, 3, nullptr});
    EXPECT_EQ(mshr.find(0x1000)->targets.size(), 2u);
}

// ---------------------------------------------------------------------
// DRAM model
// ---------------------------------------------------------------------

TEST(Dram, ReadLatency)
{
    SimClock clock;
    DramModel dram(DramParams{100, 4, 1}, &clock);
    EXPECT_EQ(dram.read(), 100u);
    EXPECT_EQ(dram.reads(), 1u);
}

TEST(Dram, ChannelOccupancySerializes)
{
    SimClock clock;
    DramModel dram(DramParams{100, 4, 1}, &clock);
    // Back-to-back reads at cycle 0 on one channel space by occupancy.
    EXPECT_EQ(dram.read(), 100u);
    EXPECT_EQ(dram.read(), 104u);
    EXPECT_EQ(dram.read(), 108u);
    EXPECT_GT(dram.queueDelay(), 0u);
}

TEST(Dram, TwoChannelsDoubleBandwidth)
{
    SimClock clock;
    DramModel dram(DramParams{100, 4, 2}, &clock);
    EXPECT_EQ(dram.read(), 100u);
    EXPECT_EQ(dram.read(), 100u); // second channel
    EXPECT_EQ(dram.read(), 104u);
    EXPECT_EQ(dram.read(), 104u);
}

TEST(Dram, WritesConsumeBandwidthOnly)
{
    SimClock clock;
    DramModel dram(DramParams{100, 4, 1}, &clock);
    dram.write();
    EXPECT_EQ(dram.writes(), 1u);
    EXPECT_EQ(dram.read(), 104u); // queued behind the write
}

TEST(Dram, IdleChannelsRecover)
{
    SimClock clock;
    DramModel dram(DramParams{100, 4, 1}, &clock);
    dram.read();
    clock.now = 50;
    EXPECT_EQ(dram.read(), 150u); // no residual queueing
}

} // namespace
} // namespace spburst
