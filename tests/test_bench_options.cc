/**
 * @file
 * Unit tests for the bench command-line front end: flag parsing and
 * the (fatal) rejection of unknown options.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_common.hh"

namespace spburst::bench
{
namespace
{

/** Build a mutable argv from string literals for BenchOptions::parse. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : strings_(std::move(args))
    {
        strings_.insert(strings_.begin(), "bench");
        for (auto &s : strings_)
            pointers_.push_back(s.data());
    }

    int argc() const { return static_cast<int>(pointers_.size()); }
    char **argv() { return pointers_.data(); }

  private:
    std::vector<std::string> strings_;
    std::vector<char *> pointers_;
};

TEST(BenchOptions, DefaultsComeFromTheCaller)
{
    Argv a({});
    const BenchOptions o = BenchOptions::parse(a.argc(), a.argv(), 77'000);
    EXPECT_EQ(o.uops, 77'000u);
    EXPECT_EQ(o.seed, 1u);
    EXPECT_EQ(o.jobs, 0u);
    EXPECT_FALSE(o.progress);
}

TEST(BenchOptions, ParsesEveryFlag)
{
    Argv a({"--uops=5000", "--seed=42", "--jobs=4", "--progress",
            "--trace=foo.champsim"});
    const BenchOptions o = BenchOptions::parse(a.argc(), a.argv());
    EXPECT_EQ(o.uops, 5'000u);
    EXPECT_EQ(o.seed, 42u);
    EXPECT_EQ(o.jobs, 4u);
    EXPECT_TRUE(o.progress);
    EXPECT_EQ(o.trace, "foo.champsim");
}

TEST(BenchOptions, QuickOverridesTheUopBudget)
{
    Argv a({"--quick"});
    const BenchOptions o = BenchOptions::parse(a.argc(), a.argv(), 500'000);
    EXPECT_EQ(o.uops, 20'000u);
}

TEST(BenchOptionsDeathTest, UnknownFlagIsRejected)
{
    Argv a({"--no-such-flag"});
    EXPECT_EXIT(BenchOptions::parse(a.argc(), a.argv()),
                testing::ExitedWithCode(1), "unknown bench option");
}

TEST(BenchOptionsDeathTest, MisspelledValueFlagIsRejected)
{
    Argv a({"--uop=5000"});
    EXPECT_EXIT(BenchOptions::parse(a.argc(), a.argv()),
                testing::ExitedWithCode(1),
                "unknown bench option '--uop=5000'");
}

TEST(BenchRunner, MemoizesByConfigKey)
{
    BenchOptions options;
    options.uops = 2'000;
    Runner runner(options);
    const SimResult &a = runner.run("x264", 56, kAtCommit);
    const SimResult &b = runner.run("x264", 56, kAtCommit);
    EXPECT_EQ(&a, &b); // second call is the cached object
    EXPECT_EQ(runner.executed(), 1u);
}

TEST(BenchRunner, PrewarmFillsTheCacheTheLoopsHit)
{
    BenchOptions options;
    options.uops = 2'000;
    options.jobs = 1;

    Runner serial(options);
    const SimResult &direct = serial.run("x264", 14, kSpb);

    Runner warmed(options);
    warmed.prewarmGrid({"x264"}, {14}, {kSpb}, false);
    EXPECT_EQ(warmed.executed(), 1u);
    const SimResult &cached = warmed.run("x264", 14, kSpb);
    EXPECT_EQ(warmed.executed(), 1u); // no new simulation
    EXPECT_EQ(cached.cycles, direct.cycles);
    EXPECT_EQ(cached.committedUops(), direct.committedUops());
}

} // namespace
} // namespace spburst::bench
