/**
 * @file
 * Unit tests for the common substrate: address math, RNG, statistics,
 * tables and the event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/clock.hh"
#include "common/event_queue.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace spburst
{
namespace
{

// ---------------------------------------------------------------------
// Address geometry
// ---------------------------------------------------------------------

TEST(Types, BlockAlignmentMasksLowBits)
{
    EXPECT_EQ(blockAlign(0x0), 0u);
    EXPECT_EQ(blockAlign(0x3f), 0u);
    EXPECT_EQ(blockAlign(0x40), 0x40u);
    EXPECT_EQ(blockAlign(0x7f), 0x40u);
    EXPECT_EQ(blockAlign(0x123456789a), 0x1234567880u);
}

TEST(Types, BlockNumberIsAddrShifted)
{
    EXPECT_EQ(blockNumber(0x0), 0u);
    EXPECT_EQ(blockNumber(0x40), 1u);
    EXPECT_EQ(blockNumber(0xfff), 63u);
}

TEST(Types, PageGeometry)
{
    EXPECT_EQ(pageAlign(0x1fff), 0x1000u);
    EXPECT_EQ(pageNumber(0x1fff), 1u);
    EXPECT_EQ(pageOffset(0x1fff), 0xfffu);
    EXPECT_EQ(kBlocksPerPage, 64u);
}

TEST(Types, BlockIndexInPage)
{
    EXPECT_EQ(blockIndexInPage(0x1000), 0u);
    EXPECT_EQ(blockIndexInPage(0x1040), 1u);
    EXPECT_EQ(blockIndexInPage(0x1fff), 63u);
}

TEST(Types, SameBlockAndSamePage)
{
    EXPECT_TRUE(sameBlock(0x100, 0x13f));
    EXPECT_FALSE(sameBlock(0x100, 0x140));
    EXPECT_TRUE(samePage(0x1000, 0x1fff));
    EXPECT_FALSE(samePage(0x1000, 0x2000));
}

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, BurstLengthBoundedAndRoughlyMean)
{
    Rng r(13);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const auto v = r.burstLength(8.0, 100);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 100u);
        sum += static_cast<double>(v);
    }
    EXPECT_NEAR(sum / 20000.0, 8.0, 1.0);
}

// ---------------------------------------------------------------------
// StatSet and aggregation helpers
// ---------------------------------------------------------------------

TEST(Stats, StatSetInsertLookup)
{
    StatSet s;
    s.set("a", 1.0);
    s.set("b", 2.0);
    EXPECT_TRUE(s.has("a"));
    EXPECT_FALSE(s.has("c"));
    EXPECT_DOUBLE_EQ(s.get("b"), 2.0);
    s.set("a", 3.0); // overwrite keeps position
    EXPECT_DOUBLE_EQ(s.get("a"), 3.0);
    EXPECT_EQ(s.entries().size(), 2u);
}

TEST(Stats, StatSetAddByName)
{
    StatSet s;
    s.add("n", 2.0); // absent: created at the delta
    s.add("n", 3.0);
    EXPECT_DOUBLE_EQ(s.get("n"), 5.0);
    EXPECT_EQ(s.entries().size(), 1u);
}

TEST(Stats, StatSetInternedHandles)
{
    StatSet s;
    s.set("before", 7.0);
    const StatHandle h = s.intern("bursts");
    EXPECT_TRUE(h.valid());
    EXPECT_FALSE(StatHandle{}.valid());
    EXPECT_DOUBLE_EQ(s.get(h), 0.0); // new entry initialised to zero
    EXPECT_EQ(s.name(h), "bursts");

    s.add(h, 2.0);
    s.add(h, 3.0);
    EXPECT_DOUBLE_EQ(s.get(h), 5.0);
    EXPECT_DOUBLE_EQ(s.get("bursts"), 5.0); // same entry as by-name

    s.set(h, 1.5);
    EXPECT_DOUBLE_EQ(s.get("bursts"), 1.5);

    // Interning an existing name returns a handle to the old entry
    // and does not disturb insertion order.
    const StatHandle hb = s.intern("before");
    EXPECT_DOUBLE_EQ(s.get(hb), 7.0);
    EXPECT_EQ(s.entries().size(), 2u);
    EXPECT_EQ(s.entries()[0].first, "before");
    EXPECT_EQ(s.entries()[1].first, "bursts");

    // Handles stay valid as later insertions grow the set.
    for (int i = 0; i < 100; ++i)
        s.set("filler" + std::to_string(i), i);
    s.add(h, 0.5);
    EXPECT_DOUBLE_EQ(s.get("bursts"), 2.0);
}

TEST(Stats, StatSetMergePrefixes)
{
    StatSet inner;
    inner.set("x", 1.0);
    StatSet outer;
    outer.merge("l1.", inner);
    EXPECT_DOUBLE_EQ(outer.get("l1.x"), 1.0);
}

TEST(Stats, GeomeanMatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 2.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
}

TEST(Stats, MeanAndRatio)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(ratio(6, 3), 2.0);
    EXPECT_DOUBLE_EQ(ratio(6, 0, -1.0), -1.0);
}

TEST(Stats, HistogramBucketsAndAverage)
{
    Histogram h(10, 100);
    for (std::uint64_t v : {5ull, 15ull, 15ull, 95ull, 250ull})
        h.sample(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 5 + 15 + 15 + 95 + 250u);
    EXPECT_DOUBLE_EQ(h.average(), 76.0);
    // 250 lands in the last bucket together with 95.
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(90), 2.0 / 5.0);
}

// ---------------------------------------------------------------------
// TextTable
// ---------------------------------------------------------------------

TEST(Table, RendersAlignedRows)
{
    TextTable t("T", {"name", "v"});
    t.addRow({"x", "1"});
    t.addRow("y", {2.5}, 1);
    const std::string s = t.render();
    EXPECT_NE(s.find("== T =="), std::string::npos);
    EXPECT_NE(s.find("| x"), std::string::npos);
    EXPECT_NE(s.find("2.5"), std::string::npos);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatPercent(0.1234, 1), "12.3%");
}

// ---------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------

TEST(EventQueue, RunsInCycleOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(5); });
    q.schedule(3, [&] { order.push_back(3); });
    q.schedule(4, [&] { order.push_back(4); });
    q.runUntil(10);
    EXPECT_EQ(order, (std::vector<int>{3, 4, 5}));
}

TEST(EventQueue, FifoAmongSameCycle)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.runUntil(7);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, DoesNotRunFutureEvents)
{
    EventQueue q;
    bool ran = false;
    q.schedule(10, [&] { ran = true; });
    q.runUntil(9);
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.nextEventCycle(), 10u);
    q.runUntil(10);
    EXPECT_TRUE(ran);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EventsScheduledDuringRunSameCycleExecute)
{
    EventQueue q;
    int depth = 0;
    q.schedule(1, [&] {
        ++depth;
        q.schedule(1, [&] { ++depth; });
    });
    q.runUntil(1);
    EXPECT_EQ(depth, 2);
}

TEST(Clock, TickAdvancesAndDrains)
{
    SimClock sim_clock;
    int fired = 0;
    sim_clock.events.schedule(2, [&] { ++fired; });
    sim_clock.tick();
    EXPECT_EQ(sim_clock.now, 1u);
    EXPECT_EQ(fired, 0);
    sim_clock.tick();
    EXPECT_EQ(fired, 1);
}

} // namespace
} // namespace spburst
