/**
 * @file
 * Unit tests for the event-based energy model.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

namespace spburst
{
namespace
{

EnergyInput
baseInput(const CoreStats &core, const StoreBufferStats &sb,
          const CacheStats &l1)
{
    EnergyInput in;
    in.cycles = 1000;
    in.core = &core;
    in.sb = &sb;
    in.l1d = &l1;
    return in;
}

TEST(EnergyModel, LeakageScalesWithCycles)
{
    EnergyModel model;
    CoreStats core;
    StoreBufferStats sb;
    CacheStats l1;
    EnergyInput in = baseInput(core, sb, l1);
    const double e1 = model.compute(in).leakagePj;
    in.cycles = 2000;
    const double e2 = model.compute(in).leakagePj;
    EXPECT_NEAR(e2, 2.0 * e1, 1e-9);
    EXPECT_GT(e1, 0.0);
}

TEST(EnergyModel, CoreDynamicScalesWithActivity)
{
    EnergyModel model;
    CoreStats core;
    StoreBufferStats sb;
    CacheStats l1;
    core.fetchedUops = 1000;
    core.issuedUops = 800;
    core.committedUops = 700;
    EnergyInput in = baseInput(core, sb, l1);
    const double e1 = model.compute(in).coreDynamicPj;
    core.fetchedUops = 2000;
    core.issuedUops = 1600;
    core.committedUops = 1400;
    const double e2 = model.compute(in).coreDynamicPj;
    EXPECT_NEAR(e2, 2.0 * e1, 1e-9);
}

TEST(EnergyModel, WrongPathWorkCostsEnergy)
{
    // Two runs committing the same work; the one with more fetched
    // (wrong-path) uops must burn more core energy — the effect SPB
    // exploits in Fig. 7.
    EnergyModel model;
    CoreStats lean, wasteful;
    StoreBufferStats sb;
    CacheStats l1;
    lean.fetchedUops = 1000;
    lean.issuedUops = 900;
    lean.committedUops = 900;
    wasteful = lean;
    wasteful.fetchedUops = 1600; // extra wrong-path fetches
    wasteful.issuedUops = 1200;
    EnergyInput a = baseInput(lean, sb, l1);
    EnergyInput b = baseInput(wasteful, sb, l1);
    EXPECT_GT(model.compute(b).coreDynamicPj,
              model.compute(a).coreDynamicPj);
}

TEST(EnergyModel, SbCamEnergyScalesWithSbSize)
{
    EnergyModel model;
    CoreStats core;
    core.committedLoads = 10'000;
    StoreBufferStats sb;
    CacheStats l1;
    EnergyInput in = baseInput(core, sb, l1);
    in.sbEntries = 14;
    const double small = model.compute(in).coreDynamicPj;
    in.sbEntries = 56;
    const double big = model.compute(in).coreDynamicPj;
    EXPECT_GT(big, small)
        << "a larger SB CAM must cost more per load search";
}

TEST(EnergyModel, CacheEnergyCountsTagAndData)
{
    EnergyModel model;
    CoreStats core;
    StoreBufferStats sb;
    CacheStats l1;
    EnergyInput in = baseInput(core, sb, l1);
    const double none = model.compute(in).cacheDynamicPj;
    l1.tagAccesses = 1000;
    l1.dataAccesses = 500;
    const double some = model.compute(in).cacheDynamicPj;
    EXPECT_GT(some, none);
}

TEST(EnergyModel, DramDominatesPerAccess)
{
    EnergyModel model;
    EXPECT_GT(model.params().dramAccessPj, model.params().l3AccessPj);
    EXPECT_GT(model.params().l3AccessPj, model.params().l2AccessPj);
    EXPECT_GT(model.params().l2AccessPj, model.params().l1DataPj);
}

} // namespace
} // namespace spburst
