/**
 * @file
 * Tests for spburst-lint: every rule must trip on its bad fixture at
 * the exact expected line, stay silent on the good fixtures, honour
 * suppressions (and report stale ones), render SARIF that passes a
 * structural smoke test — and the real tree must lint clean.
 *
 * Fixture corpus: tests/lint/ (SPBURST_LINT_FIXTURES). The directory
 * mimics a repo root (src/mem/..., tools/...) so the analyzer's
 * path-based result-affecting classification applies naturally.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <sys/wait.h>

#include "analysis/compdb.hh"
#include "analysis/engine.hh"

namespace spburst::lint
{
namespace
{

RunResult
lintFixtures(std::vector<std::string> onlyRules = {})
{
    Options options;
    options.root = SPBURST_LINT_FIXTURES;
    options.files = filesFromTree(options.root);
    options.onlyRules = std::move(onlyRules);
    return runLint(options);
}

using Key = std::tuple<std::string, std::string, int>; // rule, file, line

std::set<Key>
keysOf(const RunResult &result)
{
    std::set<Key> keys;
    for (const Finding &f : result.findings)
        keys.insert({f.ruleId, f.file, f.line});
    return keys;
}

TEST(Lint, FixtureCorpusTripsEveryRuleAtTheExpectedLines)
{
    const RunResult result = lintFixtures();
    EXPECT_TRUE(result.errors.empty());
    EXPECT_EQ(result.filesAnalyzed, 14u);

    const std::set<Key> expected = {
        {"nondeterminism", "src/mem/nondet_bad.cc", 11},       // rand
        {"nondeterminism", "src/mem/nondet_bad.cc", 12},       // std::time
        {"nondeterminism", "src/mem/nondet_bad.cc", 13},       // chrono x2
        {"nondeterminism", "src/mem/nondet_bad.cc", 14},       // getenv
        {"unordered-iteration", "src/mem/unordered_bad.cc", 18},
        {"unordered-iteration", "src/mem/unordered_bad.cc", 32},
        {"unordered-iteration", "src/mem/unordered_bad.cc", 34},
        {"unordered-iteration", "src/mem/unordered_bad.cc", 36},
        {"check-side-effect", "src/mem/check_bad.cc", 15},     // ++
        {"check-side-effect", "src/mem/check_bad.cc", 16},     // =
        {"check-side-effect", "src/mem/check_bad.cc", 17},     // pop()
        {"callback-capture", "src/mem/capture_bad.cc", 22},    // [&]
        {"callback-capture", "src/mem/capture_bad.cc", 23},    // [=]
        {"callback-capture", "src/mem/capture_bad.cc", 24},    // [&x]
        {"callback-capture", "src/mem/capture_bad.cc", 26},    // Mshr*
        {"callback-inline-size", "src/mem/capture_size_bad.cc", 35},
        {"stat-name", "src/mem/stat_bad.cc", 10},
        {"stat-name", "src/mem/stat_bad.cc", 11},
        {"unused-suppression", "src/mem/suppress.cc", 14},
    };
    EXPECT_EQ(keysOf(result), expected);
    // chrono + steady_clock both flag nondet_bad.cc:13.
    EXPECT_EQ(result.findings.size(), 20u);
}

TEST(Lint, GoodFixturesAndExemptDirsStaySilent)
{
    const RunResult result = lintFixtures();
    for (const Finding &f : result.findings) {
        EXPECT_EQ(f.file.find("_good"), std::string::npos) << f.file;
        EXPECT_EQ(f.file.find("tools/"), std::string::npos) << f.file;
    }
}

TEST(Lint, UsedSuppressionsSilenceAndDoNotReadAsStale)
{
    const RunResult result = lintFixtures();
    for (const Finding &f : result.findings) {
        // unordered_good.cc's harvest loop and suppress.cc's rand()
        // are both allowed; only the stale comment may surface.
        if (f.file == "src/mem/unordered_good.cc") {
            ADD_FAILURE() << renderText(result);
        }
        if (f.file == "src/mem/suppress.cc") {
            EXPECT_EQ(f.ruleId, "unused-suppression");
        }
    }
}

TEST(Lint, RuleFilterRestrictsToTheRequestedRule)
{
    const RunResult result = lintFixtures({"nondeterminism"});
    EXPECT_EQ(result.findings.size(), 5u);
    for (const Finding &f : result.findings) {
        EXPECT_EQ(f.ruleId, "nondeterminism");
        EXPECT_EQ(f.file, "src/mem/nondet_bad.cc");
    }
}

TEST(Lint, CatalogueHasTheSixRulesWithUniqueIds)
{
    std::set<std::string> ids;
    for (const Rule *rule : allRules())
        ids.insert(std::string(rule->info().id));
    const std::set<std::string> expected = {
        "nondeterminism",   "unordered-iteration",
        "check-side-effect", "callback-capture",
        "callback-inline-size", "stat-name",
    };
    EXPECT_EQ(ids, expected);
}

TEST(Lint, TextRenderingIsGccStyle)
{
    const std::string text = renderText(lintFixtures());
    EXPECT_NE(text.find("src/mem/nondet_bad.cc:11:28: error: "
                        "[nondeterminism] 'rand'"),
              std::string::npos)
        << text;
}

/** Minimal structural JSON check: balanced braces/brackets outside of
 *  strings, no trailing garbage. Not a schema validator, but enough to
 *  catch broken escaping or truncation. */
bool
jsonBalanced(const std::string &s)
{
    int depth = 0;
    bool inString = false;
    bool sawAny = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
        } else if (c == '"') {
            inString = true;
        } else if (c == '{' || c == '[') {
            ++depth;
            sawAny = true;
        } else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return sawAny && depth == 0 && !inString;
}

TEST(Lint, SarifOutputPassesTheSchemaSmokeTest)
{
    const std::string sarif = renderSarif(lintFixtures());
    EXPECT_TRUE(jsonBalanced(sarif)) << sarif;
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
    EXPECT_NE(sarif.find("\"name\": \"spburst-lint\""),
              std::string::npos);
    // Every rule id is declared in the driver metadata, and at least
    // one result region carries line/column coordinates.
    for (const Rule *rule : allRules())
        EXPECT_NE(sarif.find("\"id\": \"" +
                             std::string(rule->info().id) + "\""),
                  std::string::npos)
            << rule->info().id;
    EXPECT_NE(sarif.find("\"startLine\": 11"), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"stat-name\""),
              std::string::npos);
}

/** Run the CLI and capture (exit code, stdout). */
std::pair<int, std::string>
runCli(const std::string &args)
{
    const std::string cmd =
        std::string(SPBURST_LINT_BIN) + " " + args + " 2>/dev/null";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
        out.append(buf, n);
    const int status = pclose(pipe);
    return {WIFEXITED(status) ? WEXITSTATUS(status) : -1, out};
}

TEST(LintCli, FindingsExitOneAndWriteSarif)
{
    const std::string sarifPath =
        testing::TempDir() + "/spburst_lint_fixture.sarif";
    const auto [code, out] = runCli("--tree=" SPBURST_LINT_FIXTURES
                                    " --sarif=" +
                                    sarifPath);
    EXPECT_EQ(code, 1);
    EXPECT_NE(out.find("[callback-inline-size]"), std::string::npos)
        << out;
    std::ifstream in(sarifPath);
    ASSERT_TRUE(in.good());
    std::ostringstream sarif;
    sarif << in.rdbuf();
    EXPECT_TRUE(jsonBalanced(sarif.str()));
    EXPECT_NE(sarif.str().find("\"version\": \"2.1.0\""),
              std::string::npos);
    std::remove(sarifPath.c_str());
}

TEST(LintCli, CleanInputExitsZero)
{
    const auto [code, out] =
        runCli("--root=" SPBURST_LINT_FIXTURES
               " " SPBURST_LINT_FIXTURES "/src/mem/check_good.cc");
    EXPECT_EQ(code, 0);
    EXPECT_EQ(out, "");
}

TEST(LintCli, GithubAnnotationsCarryFileLineAndRule)
{
    const auto [code, out] = runCli(
        "--github --rule=stat-name --tree=" SPBURST_LINT_FIXTURES);
    EXPECT_EQ(code, 1);
    EXPECT_NE(
        out.find("::error file=src/mem/stat_bad.cc,line=10,col=16::"
                 "[stat-name]"),
        std::string::npos)
        << out;
}

TEST(LintTree, RealSourcesLintClean)
{
    Options options;
    options.root = SPBURST_REPO_ROOT;
    options.files = filesFromTree(options.root);
    const RunResult result = runLint(options);
    EXPECT_TRUE(result.errors.empty());
    EXPECT_GE(result.filesAnalyzed, 100u);
    EXPECT_TRUE(result.findings.empty()) << renderText(result);
}

} // namespace
} // namespace spburst::lint
