/**
 * @file
 * Tests for spburst-lint: every rule must trip on its bad fixture at
 * the exact expected line, stay silent on the good fixtures, honour
 * suppressions (and report stale ones), render SARIF that passes a
 * structural smoke test — and the real tree must lint clean.
 *
 * Fixture corpus: tests/lint/ (SPBURST_LINT_FIXTURES). The directory
 * mimics a repo root (src/mem/..., tools/...) so the analyzer's
 * path-based result-affecting classification applies naturally.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <sys/wait.h>

#include <filesystem>

#include "analysis/compdb.hh"
#include "analysis/engine.hh"
#include "analysis/project.hh"

namespace spburst::lint
{
namespace
{

RunResult
lintFixtures(std::vector<std::string> onlyRules = {})
{
    Options options;
    options.root = SPBURST_LINT_FIXTURES;
    options.files = filesFromTree(options.root);
    options.onlyRules = std::move(onlyRules);
    return runLint(options);
}

using Key = std::tuple<std::string, std::string, int>; // rule, file, line

std::set<Key>
keysOf(const RunResult &result)
{
    std::set<Key> keys;
    for (const Finding &f : result.findings)
        keys.insert({f.ruleId, f.file, f.line});
    return keys;
}

TEST(Lint, FixtureCorpusTripsEveryRuleAtTheExpectedLines)
{
    const RunResult result = lintFixtures();
    EXPECT_TRUE(result.errors.empty());
    EXPECT_EQ(result.filesAnalyzed, 32u);

    const std::set<Key> expected = {
        {"nondeterminism", "src/mem/nondet_bad.cc", 11},       // rand
        {"nondeterminism", "src/mem/nondet_bad.cc", 12},       // std::time
        {"nondeterminism", "src/mem/nondet_bad.cc", 13},       // chrono x2
        {"nondeterminism", "src/mem/nondet_bad.cc", 14},       // getenv
        {"unordered-iteration", "src/mem/unordered_bad.cc", 18},
        {"unordered-iteration", "src/mem/unordered_bad.cc", 32},
        {"unordered-iteration", "src/mem/unordered_bad.cc", 34},
        {"unordered-iteration", "src/mem/unordered_bad.cc", 36},
        {"check-side-effect", "src/mem/check_bad.cc", 15},     // ++
        {"check-side-effect", "src/mem/check_bad.cc", 16},     // =
        {"check-side-effect", "src/mem/check_bad.cc", 17},     // pop()
        {"callback-capture", "src/mem/capture_bad.cc", 22},    // [&]
        {"callback-capture", "src/mem/capture_bad.cc", 23},    // [=]
        {"callback-capture", "src/mem/capture_bad.cc", 24},    // [&x]
        {"callback-capture", "src/mem/capture_bad.cc", 26},    // Mshr*
        {"callback-inline-size", "src/mem/capture_size_bad.cc", 35},
        {"stat-name", "src/mem/stat_bad.cc", 10},
        {"stat-name", "src/mem/stat_bad.cc", 11},
        {"unused-suppression", "src/mem/suppress.cc", 14},
        {"snapshot-coverage", "src/mem/snapcov_bad.cc", 15},  // stats_
        {"codec-symmetry", "src/mem/codec_bad.cc", 14}, // U32 vs U64
        {"codec-symmetry", "src/mem/codec_bad.cc", 19}, // 3 vs 2 ops
        {"stat-hot-path", "src/mem/stathot_bad.cc", 15},  // member
        {"stat-hot-path", "src/mem/stathot_bad.cc", 16},  // accessor
        {"hot-alloc", "src/mem/hotalloc_bad.cc", 13},  // push_back
        {"hot-alloc", "src/mem/hotalloc_bad.cc", 21},  // make_unique
        {"hot-alloc", "src/mem/hotalloc_bad.cc", 23},  // new
        {"hot-alloc", "src/mem/hotalloc_bad.cc", 37},  // member field
        {"config-key-coverage", "tools/config_bad.cc", 12},
        {"nondeterminism-taint", "src/mem/taint_bad.cc", 28},
        {"nondeterminism-taint", "src/mem/taint_bad.cc", 34},
        {"callback-lifetime", "src/mem/lifetime_bad.cc", 17},
        {"callback-lifetime", "src/mem/lifetime_bad.cc", 25},
        {"callback-lifetime", "src/mem/lifetime_bad.cc", 32},
        {"ff-stat-parity", "src/mem/ffparity_bad.cc", 32},
        {"ff-stat-parity", "src/mem/ffparity_bad.cc", 42},
        {"check-purity-flow", "src/mem/checkflow_bad.cc", 11},
        {"check-purity-flow", "src/mem/checkflow_bad.cc", 17},
    };
    EXPECT_EQ(keysOf(result), expected);
    // chrono + steady_clock both flag nondet_bad.cc:13.
    EXPECT_EQ(result.findings.size(), 39u);
}

TEST(Lint, GoodFixturesAndExemptDirsStaySilent)
{
    const RunResult result = lintFixtures();
    for (const Finding &f : result.findings) {
        EXPECT_EQ(f.file.find("_good"), std::string::npos) << f.file;
        // tools/ is exempt from the determinism rules but not from
        // config-key-coverage, which only applies there.
        if (f.file.find("tools/") != std::string::npos) {
            EXPECT_EQ(f.ruleId, "config-key-coverage") << f.file;
        }
    }
}

TEST(Lint, UsedSuppressionsSilenceAndDoNotReadAsStale)
{
    const RunResult result = lintFixtures();
    for (const Finding &f : result.findings) {
        // unordered_good.cc's harvest loop and suppress.cc's rand()
        // are both allowed; only the stale comment may surface.
        if (f.file == "src/mem/unordered_good.cc") {
            ADD_FAILURE() << renderText(result);
        }
        if (f.file == "src/mem/suppress.cc") {
            EXPECT_EQ(f.ruleId, "unused-suppression");
        }
    }
}

TEST(Lint, RuleFilterRestrictsToTheRequestedRule)
{
    const RunResult result = lintFixtures({"nondeterminism"});
    EXPECT_EQ(result.findings.size(), 5u);
    for (const Finding &f : result.findings) {
        EXPECT_EQ(f.ruleId, "nondeterminism");
        EXPECT_EQ(f.file, "src/mem/nondet_bad.cc");
    }
}

TEST(Lint, CatalogueHasTheFifteenRulesWithUniqueIds)
{
    std::set<std::string> ids;
    for (const Rule *rule : allRules())
        ids.insert(std::string(rule->info().id));
    const std::set<std::string> expected = {
        "nondeterminism",   "unordered-iteration",
        "check-side-effect", "callback-capture",
        "callback-inline-size", "stat-name",
        "snapshot-coverage", "codec-symmetry",
        "stat-hot-path", "hot-alloc", "config-key-coverage",
        "nondeterminism-taint", "callback-lifetime",
        "ff-stat-parity", "check-purity-flow",
    };
    EXPECT_EQ(ids, expected);
    EXPECT_EQ(allRules().size(), expected.size()); // ids are unique
}

TEST(Lint, TextRenderingIsGccStyle)
{
    const std::string text = renderText(lintFixtures());
    EXPECT_NE(text.find("src/mem/nondet_bad.cc:11:28: error: "
                        "[nondeterminism] 'rand'"),
              std::string::npos)
        << text;
}

/** Minimal structural JSON check: balanced braces/brackets outside of
 *  strings, no trailing garbage. Not a schema validator, but enough to
 *  catch broken escaping or truncation. */
bool
jsonBalanced(const std::string &s)
{
    int depth = 0;
    bool inString = false;
    bool sawAny = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
        } else if (c == '"') {
            inString = true;
        } else if (c == '{' || c == '[') {
            ++depth;
            sawAny = true;
        } else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return sawAny && depth == 0 && !inString;
}

TEST(Lint, SarifOutputPassesTheSchemaSmokeTest)
{
    const std::string sarif = renderSarif(lintFixtures());
    EXPECT_TRUE(jsonBalanced(sarif)) << sarif;
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
    EXPECT_NE(sarif.find("\"name\": \"spburst-lint\""),
              std::string::npos);
    // Every rule id is declared in the driver metadata, and at least
    // one result region carries line/column coordinates.
    for (const Rule *rule : allRules())
        EXPECT_NE(sarif.find("\"id\": \"" +
                             std::string(rule->info().id) + "\""),
                  std::string::npos)
            << rule->info().id;
    EXPECT_NE(sarif.find("\"startLine\": 11"), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"stat-name\""),
              std::string::npos);
}

/** Run the CLI and capture (exit code, stdout). */
std::pair<int, std::string>
runCli(const std::string &args)
{
    const std::string cmd =
        std::string(SPBURST_LINT_BIN) + " " + args + " 2>/dev/null";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
        out.append(buf, n);
    const int status = pclose(pipe);
    return {WIFEXITED(status) ? WEXITSTATUS(status) : -1, out};
}

TEST(LintCli, FindingsExitOneAndWriteSarif)
{
    const std::string sarifPath =
        testing::TempDir() + "/spburst_lint_fixture.sarif";
    const auto [code, out] = runCli("--tree=" SPBURST_LINT_FIXTURES
                                    " --sarif=" +
                                    sarifPath);
    EXPECT_EQ(code, 1);
    EXPECT_NE(out.find("[callback-inline-size]"), std::string::npos)
        << out;
    std::ifstream in(sarifPath);
    ASSERT_TRUE(in.good());
    std::ostringstream sarif;
    sarif << in.rdbuf();
    EXPECT_TRUE(jsonBalanced(sarif.str()));
    EXPECT_NE(sarif.str().find("\"version\": \"2.1.0\""),
              std::string::npos);
    std::remove(sarifPath.c_str());
}

TEST(LintCli, CleanInputExitsZero)
{
    const auto [code, out] =
        runCli("--root=" SPBURST_LINT_FIXTURES
               " " SPBURST_LINT_FIXTURES "/src/mem/check_good.cc");
    EXPECT_EQ(code, 0);
    EXPECT_EQ(out, "");
}

TEST(LintCli, GithubAnnotationsCarryFileLineAndRule)
{
    const auto [code, out] = runCli(
        "--github --rule=stat-name --tree=" SPBURST_LINT_FIXTURES);
    EXPECT_EQ(code, 1);
    EXPECT_NE(
        out.find("::error file=src/mem/stat_bad.cc,line=10,col=16::"
                 "[stat-name]"),
        std::string::npos)
        << out;
}

TEST(LintTree, RealSourcesLintClean)
{
    Options options;
    options.root = SPBURST_REPO_ROOT;
    options.files = filesFromTree(options.root);
    const RunResult result = runLint(options);
    EXPECT_TRUE(result.errors.empty());
    EXPECT_GE(result.filesAnalyzed, 100u);
    EXPECT_TRUE(result.findings.empty()) << renderText(result);
}

// ---------------------------------------------------------------------
// Semantic layer: parallelism, cache, fixes, mutation coverage
// ---------------------------------------------------------------------

TEST(Lint, OutputIsIdenticalAtAnyJobCount)
{
    Options serial;
    serial.root = SPBURST_LINT_FIXTURES;
    serial.files = filesFromTree(serial.root);
    serial.jobs = 1;
    Options wide = serial;
    wide.jobs = 8;
    const RunResult one = runLint(serial);
    const RunResult eight = runLint(wide);
    EXPECT_EQ(renderText(one), renderText(eight));
    // Summary extraction order must not leak into the dataflow
    // verdicts or their code-flow witnesses.
    EXPECT_EQ(renderSarif(one), renderSarif(eight));
}

namespace fs = std::filesystem;

/** Copy the named fixtures into a fresh temp tree and return its
 *  root. Findings and fixes then run against mutable copies. */
std::string
makeTempTree(const std::vector<std::string> &rels,
             const std::string &tag)
{
    const fs::path root = fs::path(testing::TempDir()) /
                          ("spburst_lint_" + tag);
    fs::remove_all(root);
    for (const std::string &rel : rels) {
        const fs::path dst = root / rel;
        fs::create_directories(dst.parent_path());
        fs::copy_file(fs::path(SPBURST_LINT_FIXTURES) / rel, dst);
    }
    return root.generic_string();
}

RunResult
lintTree(const std::string &root, const std::string &cachePath = "")
{
    Options options;
    options.root = root;
    options.files = filesFromTree(root);
    options.cachePath = cachePath;
    return runLint(options);
}

TEST(LintCache, WarmRunReplaysFindingsAndInvalidatesOnEdit)
{
    const std::string root = makeTempTree(
        {"src/mem/stathot_bad.cc", "src/mem/stathot_good.cc"}, "cache");
    const std::string cache = root + "/lint.cache";

    const RunResult cold = lintTree(root, cache);
    EXPECT_FALSE(cold.fromCache);
    EXPECT_EQ(cold.findings.size(), 2u);

    const RunResult warm = lintTree(root, cache);
    EXPECT_TRUE(warm.fromCache);
    EXPECT_EQ(renderText(warm), renderText(cold));
    EXPECT_EQ(warm.filesAnalyzed, cold.filesAnalyzed);

    // Any content change invalidates the whole cache key.
    {
        std::ofstream out(root + "/src/mem/stathot_bad.cc",
                          std::ios::app);
        out << "// touched\n";
    }
    const RunResult edited = lintTree(root, cache);
    EXPECT_FALSE(edited.fromCache);
    EXPECT_EQ(keysOf(edited), keysOf(cold));

    // A different rule filter must not replay the full-run cache.
    Options filtered;
    filtered.root = root;
    filtered.files = filesFromTree(root);
    filtered.cachePath = cache;
    filtered.onlyRules = {"hot-alloc"};
    const RunResult other = runLint(filtered);
    EXPECT_FALSE(other.fromCache);
    EXPECT_TRUE(other.findings.empty());
}

TEST(LintFix, HoistsInternedHandleAndReservesCapacity)
{
    const std::string root = makeTempTree(
        {"src/mem/stathot_bad.cc", "src/mem/hotalloc_bad.cc"}, "fix");
    const RunResult before = lintTree(root);
    EXPECT_EQ(before.findings.size(), 6u);

    std::vector<std::string> log;
    const std::size_t applied = applyFixes(before, root, log);
    // stat-hot-path member fix: 2 edits; hot-alloc reserve fix: 1.
    EXPECT_EQ(applied, 3u);
    ASSERT_EQ(log.size(), 2u);

    std::stringstream patched;
    patched << std::ifstream(root + "/src/mem/stathot_bad.cc").rdbuf();
    EXPECT_NE(patched.str().find("const auto h_pump_ticks = "
                                 "stats_.intern(\"pump.ticks\");"),
              std::string::npos)
        << patched.str();
    EXPECT_NE(patched.str().find("stats_.add(h_pump_ticks, 1.0);"),
              std::string::npos)
        << patched.str();

    std::stringstream reserved;
    reserved << std::ifstream(root + "/src/mem/hotalloc_bad.cc").rdbuf();
    EXPECT_NE(reserved.str().find("out.reserve(queue.size());"),
              std::string::npos)
        << reserved.str();

    // The fixed call sites no longer fire; the unfixable ones remain
    // (accessor-receiver stat access, bare new / make_unique).
    const std::set<Key> after = keysOf(lintTree(root));
    const std::set<Key> expected = {
        {"stat-hot-path", "src/mem/stathot_bad.cc", 17},
        {"hot-alloc", "src/mem/hotalloc_bad.cc", 22},
        {"hot-alloc", "src/mem/hotalloc_bad.cc", 24},
        {"hot-alloc", "src/mem/hotalloc_bad.cc", 38}, // no mechanical fix
    };
    EXPECT_EQ(after, expected);
}

TEST(LintMutation, DroppingAMemberFromRestoreIsCaught)
{
    const std::string root =
        makeTempTree({"src/mem/snapcov_good.cc"}, "mutant");
    EXPECT_TRUE(lintTree(root).findings.empty());

    // Seeded mutation: the restore method forgets one register.
    const std::string path = root + "/src/mem/snapcov_good.cc";
    std::stringstream buf;
    buf << std::ifstream(path).rdbuf();
    std::string src = buf.str();
    const std::string write = "seq_ = s;";
    ASSERT_NE(src.find(write), std::string::npos);
    src.replace(src.find(write), write.size(), "(void)s;");
    std::ofstream(path, std::ios::trunc) << src;

    const RunResult mutated = lintTree(root);
    ASSERT_EQ(mutated.findings.size(), 1u);
    EXPECT_EQ(mutated.findings[0].ruleId, "snapshot-coverage");
    EXPECT_EQ(mutated.findings[0].line, 14); // int seq_ = 0;
    EXPECT_NE(mutated.findings[0].message.find(
                  "not written in any restore method"),
              std::string::npos)
        << mutated.findings[0].message;
}

TEST(LintSarif, FindingsWithFixesCarryFixObjects)
{
    const std::string sarif = renderSarif(lintFixtures());
    EXPECT_TRUE(jsonBalanced(sarif)) << sarif;
    EXPECT_NE(sarif.find("\"fixes\": ["), std::string::npos);
    EXPECT_NE(sarif.find("\"insertedContent\""), std::string::npos);
    EXPECT_NE(sarif.find("\"charOffset\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Dataflow layer: taint witnesses, summary cache, real-tree mutations
// ---------------------------------------------------------------------

TEST(LintSarif, DataflowFindingsCarryCodeFlowSteps)
{
    const std::string sarif = renderSarif(lintFixtures());
    EXPECT_TRUE(jsonBalanced(sarif)) << sarif;
    EXPECT_NE(sarif.find("\"codeFlows\": ["), std::string::npos);
    EXPECT_NE(sarif.find("\"threadFlows\": ["), std::string::npos);
    // The parity witness walks tick root -> call chain -> write site.
    EXPECT_NE(sarif.find("ff(tick) root"), std::string::npos);
}

/** Copy a file from the real tree into a fresh temp tree and lint just
 *  that copy; seeded mutations then run against the real sources. */
std::string
makeRealTree(const std::string &rel, const std::string &tag)
{
    const fs::path root =
        fs::path(testing::TempDir()) / ("spburst_real_" + tag);
    fs::remove_all(root);
    const fs::path dst = root / rel;
    fs::create_directories(dst.parent_path());
    fs::copy_file(fs::path(SPBURST_REPO_ROOT) / rel, dst);
    return root.generic_string();
}

std::string
slurp(const std::string &path)
{
    std::stringstream buf;
    buf << std::ifstream(path).rdbuf();
    return buf.str();
}

TEST(LintMutation, DroppingAnFfExemptAnnotationIsCaught)
{
    const std::string root = makeRealTree("src/cpu/core.cc", "ffpar");
    const std::string path = root + "/src/cpu/core.cc";
    EXPECT_TRUE(lintTree(root).findings.empty())
        << renderText(lintTree(root));

    // Seeded mutation: delete one justified ff-exempt annotation; the
    // stat under Core::tick loses its skipQuiescentCycles alibi.
    std::string src = slurp(path);
    const std::size_t at = src.find("// spburst-lint: ff-exempt");
    ASSERT_NE(at, std::string::npos);
    const std::size_t eol = src.find('\n', at);
    src.erase(at, eol - at + 1);
    std::ofstream(path, std::ios::trunc) << src;

    const RunResult mutated = lintTree(root);
    ASSERT_EQ(mutated.findings.size(), 1u) << renderText(mutated);
    EXPECT_EQ(mutated.findings[0].ruleId, "ff-stat-parity");
    EXPECT_FALSE(mutated.findings[0].flow.empty());
}

TEST(LintMutation, SeedingAPointerHashIntoAStatIsCaught)
{
    const std::string root = makeRealTree("src/cpu/core.cc", "taint");
    const std::string path = root + "/src/cpu/core.cc";
    EXPECT_TRUE(lintTree(root).findings.empty());

    // Seeded mutation: a host pointer folded into a StatSet column.
    std::ofstream(path, std::ios::app)
        << "\nStatSet\n"
           "CoreStats::lintSeedTaint(const void *origin) const\n"
           "{\n"
           "    StatSet seeded;\n"
           "    seeded.set(\"core.origin\",\n"
           "               static_cast<double>(\n"
           "                   reinterpret_cast<unsigned long>("
           "origin)));\n"
           "    return seeded;\n"
           "}\n";

    const RunResult mutated = lintTree(root);
    ASSERT_EQ(mutated.findings.size(), 1u) << renderText(mutated);
    EXPECT_EQ(mutated.findings[0].ruleId, "nondeterminism-taint");
    EXPECT_FALSE(mutated.findings[0].flow.empty());
}

TEST(LintMutation, SeedingADanglingCaptureIsCaught)
{
    const std::string root = makeRealTree("src/cpu/core.cc", "dangle");
    const std::string path = root + "/src/cpu/core.cc";
    EXPECT_TRUE(lintTree(root).findings.empty());

    // Seeded mutation: a scheduled callback captures the address of a
    // stack local by value — explicit capture, so the syntactic
    // callback-capture rule stays quiet and only the CFG-lifetime rule
    // can see it.
    std::ofstream(path, std::ios::app)
        << "\nvoid\n"
           "Core::lintSeedDangling()\n"
           "{\n"
           "    int budget = 0;\n"
           "    int *p = &budget;\n"
           "    eventQueue_.schedule(1, [p] { (void)*p; });\n"
           "}\n";

    const RunResult mutated = lintTree(root);
    ASSERT_EQ(mutated.findings.size(), 1u) << renderText(mutated);
    EXPECT_EQ(mutated.findings[0].ruleId, "callback-lifetime");
}

TEST(LintMutation, SeedingAMutatingHelperIntoACheckIsCaught)
{
    const std::string root = makeRealTree("src/cpu/core.cc", "purity");
    const std::string path = root + "/src/cpu/core.cc";
    EXPECT_TRUE(lintTree(root).findings.empty());

    // Seeded mutation: SPBURST_CHECK calls a helper that advances
    // member state — lexically clean, impure one call away.
    std::ofstream(path, std::ios::app)
        << "\nunsigned long\n"
           "Core::lintSeedBump()\n"
           "{\n"
           "    lintSeed_ = lintSeed_ + 1;\n"
           "    return lintSeed_;\n"
           "}\n"
           "\n"
           "void\n"
           "Core::lintSeedAudit()\n"
           "{\n"
           "    SPBURST_CHECK(Core, lintSeedBump() != 0, "
           "\"seed advances\");\n"
           "}\n";

    const RunResult mutated = lintTree(root);
    ASSERT_EQ(mutated.findings.size(), 1u) << renderText(mutated);
    EXPECT_EQ(mutated.findings[0].ruleId, "check-purity-flow");
}

TEST(LintCache, SummariesInvalidateAlongCallEdgesAndReuseTheRest)
{
    const fs::path root = fs::path(testing::TempDir()) /
                          "spburst_lint_flowcache";
    fs::remove_all(root);
    fs::create_directories(root / "src/mem");
    // Caller and callee in separate files: the finding lives at the
    // caller's sink, the taint source at the callee's return.
    std::ofstream(root / "src/mem/flow_caller.cc")
        << "namespace fx\n"
           "{\n"
           "struct StatSet\n"
           "{\n"
           "    void set(const char *key, double v);\n"
           "};\n"
           "class FlowCaller\n"
           "{\n"
           "  public:\n"
           "    void onDrain(const void *req)\n"
           "    {\n"
           "        sum_.set(\"flow.key\",\n"
           "                 static_cast<double>(foldOrigin(req)));\n"
           "    }\n"
           "\n"
           "  private:\n"
           "    unsigned long foldOrigin(const void *p);\n"
           "    StatSet sum_;\n"
           "};\n"
           "} // namespace fx\n";
    const auto writeCallee = [&](const std::string &body) {
        std::ofstream(root / "src/mem/flow_callee.cc")
            << "namespace fx\n"
               "{\n"
               "class FlowCaller;\n"
               "unsigned long\n"
               "FlowCaller::foldOrigin(const void *p)\n"
               "{\n" +
                   body +
                   "}\n"
                   "} // namespace fx\n";
    };
    writeCallee("    return reinterpret_cast<unsigned long>(p);\n");

    const std::string cache = (root / "lint.cache").generic_string();
    const RunResult cold = lintTree(root.generic_string(), cache);
    ASSERT_EQ(cold.findings.size(), 1u) << renderText(cold);
    EXPECT_EQ(cold.findings[0].ruleId, "nondeterminism-taint");
    EXPECT_EQ(cold.findings[0].file, "src/mem/flow_caller.cc");
    EXPECT_EQ(cold.summariesReused, 0u);

    // Fix the callee only: the caller's cached summary is reused, yet
    // the propagated verdict at the unchanged caller flips to clean.
    writeCallee("    return 42ul;\n");
    const RunResult warm = lintTree(root.generic_string(), cache);
    EXPECT_FALSE(warm.fromCache);
    EXPECT_TRUE(warm.findings.empty()) << renderText(warm);
    EXPECT_EQ(warm.summariesReused, 1u);
    EXPECT_EQ(warm.summariesTotal, 2u);
}

TEST(LintCache, DeletedFilesDropOutOfTheCacheOnTheNextRun)
{
    const std::string root = makeTempTree(
        {"src/mem/stathot_bad.cc", "src/mem/stathot_good.cc"},
        "deleted");
    const std::string cache = root + "/lint.cache";

    const RunResult cold = lintTree(root, cache);
    EXPECT_EQ(cold.findings.size(), 2u);
    EXPECT_NE(slurp(cache).find("stathot_bad.cc"), std::string::npos);

    // Delete the offending file: its findings, suppressions, and
    // summary must all vanish from the next run's saved cache.
    fs::remove(fs::path(root) / "src/mem/stathot_bad.cc");
    const RunResult after = lintTree(root, cache);
    EXPECT_FALSE(after.fromCache); // file list changed the cache key
    EXPECT_TRUE(after.findings.empty()) << renderText(after);
    EXPECT_EQ(slurp(cache).find("stathot_bad.cc"), std::string::npos);

    const RunResult replay = lintTree(root, cache);
    EXPECT_TRUE(replay.fromCache);
    EXPECT_TRUE(replay.findings.empty());
}

// ---------------------------------------------------------------------
// Lexer regressions: literals the first version mis-tokenized
// ---------------------------------------------------------------------

TEST(LintLexer, DigitSeparatorsAndEncodingPrefixes)
{
    const std::string src =
        "unsigned long x = 1'000'000;\n"
        "double d = 0x1f'ff + 0b10'01 + 1'23.4'5e1'0;\n"
        "auto a = u8\"--alpha\";\n"
        "auto b = u\"beta\" ; auto c = U\"gamma\"; auto d2 = L\"d\";\n"
        "auto e = 1 < 2;\n"; // '<' after a number is not a separator
    const auto file = makeFile("/tmp/lex.cc", "/tmp", src);
    ASSERT_NE(file, nullptr);

    std::vector<std::string> numbers, strings;
    for (const Token &t : file->lex.tokens) {
        if (t.kind == TokKind::Number)
            numbers.push_back(std::string(t.text));
        if (t.kind == TokKind::String)
            strings.push_back(std::string(t.text));
    }
    EXPECT_EQ(numbers,
              (std::vector<std::string>{"1'000'000", "0x1f'ff",
                                        "0b10'01", "1'23.4'5e1'0", "1",
                                        "2"}));
    EXPECT_EQ(strings,
              (std::vector<std::string>{"u8\"--alpha\"", "u\"beta\"",
                                        "U\"gamma\"", "L\"d\""}));
}

} // namespace
} // namespace spburst::lint
