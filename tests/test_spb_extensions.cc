/**
 * @file
 * Tests for the backward-burst extension (paper Sec. IV-A describes
 * and declines it; this implementation makes it optional) and the
 * descending-store workload support that exercises it.
 */

#include <gtest/gtest.h>

#include "core/spb.hh"
#include "trace/segments.hh"

namespace spburst
{
namespace
{

SpbParams
backwardParams(unsigned n)
{
    SpbParams p;
    p.checkInterval = n;
    p.backwardBursts = true;
    return p;
}

TEST(ComputeBackwardBurst, PrecedingBlocksOfPage)
{
    // Store in block 5 of a page: blocks 0..4 precede it.
    SpbBurst b = computeBackwardBurst(0x2000 + 5 * kBlockSize + 16);
    EXPECT_EQ(b.firstBlock, 0x2000u);
    EXPECT_EQ(b.count, 5u);

    // First block of a page: nothing precedes.
    b = computeBackwardBurst(0x2000);
    EXPECT_EQ(b.count, 0u);

    // Last byte of the last block: everything else precedes.
    b = computeBackwardBurst(0x2000 + kPageSize - 1);
    EXPECT_EQ(b.firstBlock, 0x2000u);
    EXPECT_EQ(b.count, kBlocksPerPage - 1);
}

TEST(BackwardBursts, DescendingStepAcrossAliasBoundary)
{
    // Mirror of the forward alias-boundary case: stepping down from
    // block alias 0 to alias 2^58 - 1 is a contiguous -1 delta once
    // the difference is reduced mod 2^58.
    SpbDetector d(backwardParams(16));
    d.onStoreCommit(0x0, 8); // block alias 0
    d.onStoreCommit(~Addr{0} - (kBlockSize - 1), 8); // alias 2^58 - 1
    EXPECT_EQ(d.backwardCounter(), 1u)
        << "a -1 step across the 58-bit alias boundary must count";
}

TEST(BackwardBursts, StartOfPageSuppressed)
{
    SpbDetector d(backwardParams(8));
    const Addr page = 0x60000;
    // Descending 8-byte stores whose closing commit lands in the first
    // block of the page: the check fires, but nothing precedes block 0.
    for (int i = 0; i < 8; ++i)
        d.onStoreCommit(page + 0x78 - i * 8, 8);
    const SpbBurst b = d.onStoreCommit(page + 0x38, 8);
    EXPECT_EQ(b.count, 0u);
    EXPECT_EQ(d.stats().endOfPageSuppressed, 1u);
    EXPECT_EQ(d.stats().bursts, 0u);
    EXPECT_EQ(d.stats().backwardBursts, 0u);
}

TEST(BackwardBursts, DescendingPatternFires)
{
    SpbDetector d(backwardParams(8));
    // Stack-push pattern: descending 8-byte stores from near the end
    // of a page.
    Addr addr = 0x30000 + 32 * kBlockSize;
    int bursts = 0;
    for (int i = 0; i < 200; ++i, addr -= 8) {
        const SpbBurst b = d.onStoreCommit(addr, 8);
        bursts += b.count > 0;
    }
    EXPECT_GE(bursts, 1);
    EXPECT_GE(d.stats().backwardBursts, 1u);
}

TEST(BackwardBursts, DisabledByDefault)
{
    SpbParams p;
    p.checkInterval = 8;
    SpbDetector d(p);
    Addr addr = 0x30000 + 32 * kBlockSize;
    for (int i = 0; i < 200; ++i, addr -= 8)
        EXPECT_EQ(d.onStoreCommit(addr, 8).count, 0u)
            << "paper default: no backward bursts";
    EXPECT_EQ(d.stats().bursts, 0u);
}

TEST(BackwardBursts, ForwardPatternStillWinsTies)
{
    // An ascending pattern must fire the normal forward burst even
    // with the extension enabled.
    SpbDetector d(backwardParams(8));
    SpbBurst last{};
    for (int i = 0; i < 100; ++i) {
        const SpbBurst b = d.onStoreCommit(0x40000 + i * 8, 8);
        if (b.count > 0)
            last = b;
    }
    ASSERT_GT(last.count, 0u);
    EXPECT_GT(last.firstBlock, 0x40000u) << "forward burst expected";
    EXPECT_EQ(d.stats().backwardBursts, 0u);
}

TEST(BackwardBursts, CostsFourMoreBits)
{
    SpbParams fwd;
    fwd.checkInterval = 48;
    SpbParams both = fwd;
    both.backwardBursts = true;
    EXPECT_EQ(SpbDetector(both).storageBits(),
              SpbDetector(fwd).storageBits() + 4);
}

TEST(DescendingSegment, CoversSameBytesInReverse)
{
    StoreBurstSegment up(0x50000, 512, 8, Region::App, 0x400000);
    StoreBurstSegment down(0x50000, 512, 8, Region::App, 0x400000,
                           false, true);
    std::vector<Addr> up_addrs, down_addrs;
    MicroOp op;
    while (up.produce(op))
        if (op.cls == OpClass::Store)
            up_addrs.push_back(op.addr);
    while (down.produce(op))
        if (op.cls == OpClass::Store)
            down_addrs.push_back(op.addr);
    ASSERT_EQ(up_addrs.size(), down_addrs.size());
    for (std::size_t i = 0; i < up_addrs.size(); ++i)
        EXPECT_EQ(down_addrs[i], up_addrs[up_addrs.size() - 1 - i]);
}

} // namespace
} // namespace spburst
