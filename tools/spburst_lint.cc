/**
 * @file
 * spburst-lint CLI: the repo-specific static analyzer.
 *
 * Modes (one of):
 *   --compdb=<build-dir>  analyze the TUs in compile_commands.json
 *                         (plus first-party headers)
 *   --tree=<root>         analyze every .cc/.hh under src/, bench/,
 *                         tools/ of <root>
 *   <files...>            analyze an explicit file list
 *
 * Options:
 *   --root=<dir>    anchor for relative paths in diagnostics
 *                   (default: --tree value, else cwd)
 *   --rule=<ids>    comma-separated rule filter
 *   --sarif=<path>  also write a SARIF 2.1.0 log
 *   --github        also print GitHub Actions ::error annotations
 *   --no-unused-suppressions
 *                   don't report stale allow(...) comments
 *   --jobs=<n>      worker threads (0 = all hardware threads;
 *                   default 0; output is identical at any setting)
 *   --cache=<path>  incremental result cache keyed on file content
 *                   hashes: an unchanged tree replays findings
 *                   without re-analyzing
 *   --fix           apply the mechanical fixes attached to findings
 *                   (reserve insertion, interned-handle hoist)
 *   --list-rules    print the rule catalogue and exit
 *
 * Exit codes: 0 clean, 1 findings, 2 usage/read error.
 */

/* spburst-lint: config-host-only(compdb, tree, root, rule, sarif,
       github, no-unused-suppressions, jobs, cache, fix, list-rules)
   -- the linter configures analysis, never simulation: nothing here
   can affect simulated results, so no option folds into configKey. */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/compdb.hh"
#include "analysis/engine.hh"

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: spburst_lint [--compdb=BUILDDIR | --tree=ROOT | "
        "files...]\n"
        "                    [--root=DIR] [--rule=id,...] "
        "[--sarif=PATH]\n"
        "                    [--github] [--no-unused-suppressions]\n"
        "                    [--jobs=N] [--cache=PATH] [--fix] "
        "[--list-rules]\n");
    return 2;
}

void
splitCsv(const std::string &csv, std::vector<std::string> &out)
{
    std::string cur;
    for (char c : csv) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace spburst::lint;

    std::string compdb, tree, root, sarifPath;
    bool github = false;
    bool fix = false;
    Options options;
    options.jobs = 0; // all hardware threads; identical output anyway

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) {
            return arg.substr(std::string(prefix).size());
        };
        if (arg.rfind("--compdb=", 0) == 0) {
            compdb = value("--compdb=");
        } else if (arg.rfind("--tree=", 0) == 0) {
            tree = value("--tree=");
        } else if (arg.rfind("--root=", 0) == 0) {
            root = value("--root=");
        } else if (arg.rfind("--rule=", 0) == 0) {
            splitCsv(value("--rule="), options.onlyRules);
        } else if (arg.rfind("--sarif=", 0) == 0) {
            sarifPath = value("--sarif=");
        } else if (arg == "--github") {
            github = true;
        } else if (arg == "--no-unused-suppressions") {
            options.unusedSuppressions = false;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            options.jobs = static_cast<unsigned>(
                std::strtoul(value("--jobs=").c_str(), nullptr, 10));
        } else if (arg.rfind("--cache=", 0) == 0) {
            options.cachePath = value("--cache=");
        } else if (arg == "--fix") {
            fix = true;
        } else if (arg == "--list-rules") {
            for (const Rule *rule : allRules()) {
                const RuleInfo info = rule->info();
                std::printf("%-22s %s\n",
                            std::string(info.id).c_str(),
                            std::string(info.summary).c_str());
            }
            std::printf("%-22s %s\n",
                        std::string(kUnusedSuppressionId).c_str(),
                        "a spburst-lint: allow(...) comment that "
                        "silences nothing");
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "spburst_lint: unknown option %s\n",
                         arg.c_str());
            return usage();
        } else {
            options.files.push_back(arg);
        }
    }

    namespace fs = std::filesystem;
    if (root.empty())
        root = tree.empty() ? fs::current_path().generic_string() : tree;
    root = fs::weakly_canonical(fs::path(root)).generic_string();
    options.root = root;

    if (!compdb.empty()) {
        std::string error;
        auto files = filesFromCompdb(compdb, root, error);
        if (!error.empty()) {
            std::fprintf(stderr, "spburst_lint: %s\n", error.c_str());
            return 2;
        }
        options.files.insert(options.files.end(), files.begin(),
                             files.end());
    }
    if (!tree.empty()) {
        auto files = filesFromTree(tree);
        options.files.insert(options.files.end(), files.begin(),
                             files.end());
    }
    if (options.files.empty()) {
        std::fprintf(stderr, "spburst_lint: no input files\n");
        return usage();
    }

    const auto t0 = std::chrono::steady_clock::now();
    const RunResult result = runLint(options);
    const auto elapsedMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    for (const std::string &error : result.errors)
        std::fprintf(stderr, "spburst_lint: %s\n", error.c_str());

    if (fix) {
        std::vector<std::string> fixLog;
        const std::size_t applied = applyFixes(result, root, fixLog);
        for (const std::string &line : fixLog)
            std::fprintf(stderr, "spburst_lint: %s\n", line.c_str());
        std::fprintf(stderr, "spburst_lint: %zu fix edit%s applied\n",
                     applied, applied == 1 ? "" : "s");
    }

    std::fputs(renderText(result).c_str(), stdout);
    if (github)
        std::fputs(renderGithub(result).c_str(), stdout);
    if (!sarifPath.empty()) {
        std::ofstream out(sarifPath, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "spburst_lint: cannot write %s\n",
                         sarifPath.c_str());
            return 2;
        }
        out << renderSarif(result);
    }

    std::string summaryNote;
    if (result.summariesReused != 0) {
        summaryNote = " (" + std::to_string(result.summariesReused);
        summaryNote += "/" + std::to_string(result.summariesTotal);
        summaryNote += " summaries reused)";
    }
    std::fprintf(stderr,
                 "spburst_lint: %zu files, %zu finding%s in %lld ms%s%s%s\n",
                 result.filesAnalyzed, result.findings.size(),
                 result.findings.size() == 1 ? "" : "s",
                 static_cast<long long>(elapsedMs),
                 result.fromCache ? " (cache hit)" : "",
                 summaryNote.c_str(),
                 result.errors.empty() ? "" : " (with read errors)");
    if (!result.errors.empty())
        return 2;
    return result.findings.empty() ? 0 : 1;
}
