#!/usr/bin/env bash
# Fast pre-commit gate: run spburst_lint over only the files changed
# relative to the merge base with main (plus anything staged or
# unstaged). Seconds instead of a whole-tree pass; tools/lint.sh
# remains the authoritative gate CI runs.
#
# Usage: tools/precommit.sh [build-dir] [base-ref]
#   build-dir  where spburst_lint is (or will be) built
#              (default: <repo>/build)
#   base-ref   diff base (default: merge-base with main, falling back
#              to HEAD when main is absent)
#
# Notes:
#   - Explicit-file-list mode sees only the changed files, so this
#     script restricts itself to the rules that are sound on a
#     partial view. Rules whose evidence is project-wide (stat-name
#     producers, reserve()/deque declarations for hot-alloc, and the
#     suppressions those findings consume) would over-report here and
#     only run in the full-tree gate. The partial-view rules may
#     still under-report (e.g. a hot annotation living in an
#     unchanged header) — never over-report.
#   - Deliberately NO --cache: the incremental cache records which
#     file set each result was computed against, and feeding it a
#     partial set would poison the whole-tree cache lint.sh maintains.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"
base_ref="${2:-}"

cd "${repo_root}"

if [[ -z "${base_ref}" ]]; then
    base_ref="$(git merge-base HEAD main 2>/dev/null || echo HEAD)"
fi

# Changed first-party sources: committed-vs-base, staged, and unstaged,
# deduplicated, existing files only (deletions lint nothing).
mapfile -t changed < <(
    {
        git diff --name-only "${base_ref}" -- 'src/*' 'bench/*' 'tools/*'
        git diff --name-only --cached -- 'src/*' 'bench/*' 'tools/*'
        git diff --name-only -- 'src/*' 'bench/*' 'tools/*'
    } | grep -E '\.(cc|hh)$' | sort -u
)

files=()
for f in "${changed[@]:-}"; do
    [[ -n "${f}" && -f "${f}" ]] && files+=("${f}")
done

if [[ ${#files[@]} -eq 0 ]]; then
    echo "precommit.sh: no changed .cc/.hh files vs ${base_ref}; nothing to lint"
    exit 0
fi

if [[ -f "${build_dir}/CMakeCache.txt" ]]; then
    cmake --build "${build_dir}" --target spburst_lint
fi
if [[ ! -x "${build_dir}/tools/spburst_lint" ]]; then
    echo "precommit.sh: ${build_dir}/tools/spburst_lint not built." >&2
    echo "  Configure first: cmake -S '${repo_root}' -B '${build_dir}'" >&2
    exit 2
fi

# Rules that are sound when only a subset of the tree is visible.
# Of the dataflow rules, callback-lifetime and check-purity-flow are
# CFG-local enough to run here (they can only under-report when a
# callee lives in an unchanged file). nondeterminism-taint and
# ff-stat-parity are whole-program — taint crosses files through call
# summaries, and parity compares the tick tree against a skip tree
# that usually lives elsewhere — so they would both over- and
# under-report on a partial view and only run in the full-tree gate.
partial_view_rules="nondeterminism,unordered-iteration,check-side-effect"
partial_view_rules+=",callback-capture,callback-inline-size"
partial_view_rules+=",snapshot-coverage,codec-symmetry,stat-hot-path"
partial_view_rules+=",config-key-coverage"
partial_view_rules+=",callback-lifetime,check-purity-flow"

echo "precommit.sh: spburst_lint over ${#files[@]} changed file(s)"
"${build_dir}/tools/spburst_lint" --root="${repo_root}" \
    --rule="${partial_view_rules}" --no-unused-suppressions \
    "${files[@]}"
echo "precommit.sh: clean"
