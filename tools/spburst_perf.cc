/**
 * @file
 * `spburst_perf` — host-throughput benchmark for the simulator itself.
 *
 * Runs the standard workload suite on one host thread and reports how
 * fast the simulator simulates: committed uops per host second,
 * simulated cycles per host second, and executed events per host
 * second. Results go to `BENCH_simspeed.json` so the perf trajectory of
 * the simulator is tracked PR over PR (see EXPERIMENTS.md, "Measuring
 * simulator throughput").
 *
 *   spburst_perf                           # suite=all, 200k uops each
 *   spburst_perf --uops=500000 --out=speed.json
 *   spburst_perf --scheduler=heap --no-fast-forward   # pre-PR hot path
 */

#include <chrono>
/* spburst-lint: config-host-only(scheduler, no-fast-forward, check,
       out, baseline, min-speedup, help)
   -- this tool measures host wall-clock, not simulated results; the
   scheduler / fast-forward knobs exist precisely to compare host
   implementations on identical simulated work, and baseline /
   min-speedup only compare the resulting host throughputs. */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.hh"
#include "common/logging.hh"
#include "sample/runtime.hh"
#include "sim/system.hh"
#include "trace/workloads.hh"

using namespace spburst;

namespace
{

struct Options
{
    std::string suite = "all";
    bool suiteExplicit = false;
    /** ChampSim trace workloads (--trace=, repeatable; kept separate
     *  from --workload because trace specs contain commas). */
    std::vector<std::string> traces;
    std::uint64_t uops = 200'000;
    std::uint64_t seed = 1;
    sample::SampleSpec sample;
    std::string out = "BENCH_simspeed.json";
    /** Prior BENCH_simspeed.json to compare against ("" = none). */
    std::string baseline;
    /** Fail (exit 1) if total speedup vs the baseline is below this. */
    double minSpeedup = 0.0;
    SchedulerKind scheduler = SchedulerKind::Calendar;
    bool fastForward = true;
    bool spb = false;
};

struct Sample
{
    std::string name;
    std::uint64_t uops = 0;
    /** Uops retired by functional warming (sampled runs only); the
     *  effective throughput counts these too, since they advance the
     *  workload just as detailed simulation would. */
    std::uint64_t warmedUops = 0;
    std::uint64_t simCycles = 0;
    std::uint64_t ffCycles = 0;
    std::uint64_t events = 0;
    double hostSeconds = 0.0;
};

void
usage()
{
    std::puts(
        "spburst_perf — measure simulator host throughput\n"
        "  --workload=all|sb-bound|parsec|NAME[,NAME...]  (default all)\n"
        "  --trace=FILE[,skip=N][,warmup=N][,roi=N]\n"
        "                         ChampSim trace workload (repeatable)\n"
        "  --uops=N               committed uops per workload "
        "(default 200k)\n"
        "  --seed=N               workload seed (default 1)\n"
        "  --sample=interval=N,window=M[,...]  interval sampling; adds\n"
        "                         a warmed-uops column and effective\n"
        "                         (warmed+detailed) throughput\n"
        "  --spb                  run with Store-Prefetch Bursts on\n"
        "  --scheduler=calendar|heap   (default calendar)\n"
        "  --no-fast-forward      disable quiescence fast-forward\n"
        "  --check=off|fast|full  invariant level (default off)\n"
        "  --out=FILE             JSON output (default "
        "BENCH_simspeed.json)\n"
        "  --baseline=FILE        compare against a prior output file:\n"
        "                         prints per-workload and total speedup\n"
        "  --min-speedup=X        with --baseline, exit non-zero if the\n"
        "                         total speedup is below X");
}

std::vector<std::string>
expandSuite(const std::string &spec)
{
    if (spec == "all")
        return allSpecNames();
    if (spec == "sb-bound")
        return sbBoundSpecNames();
    if (spec == "parsec")
        return allParsecNames();
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos != std::string::npos) {
        const std::size_t comma = spec.find(',', pos);
        out.push_back(spec.substr(
            pos, comma == std::string::npos ? comma : comma - pos));
        pos = comma == std::string::npos ? comma : comma + 1;
    }
    return out;
}

Options
parse(int argc, char **argv)
{
    Options o;
    check::setLevel(check::Level::Off);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            const std::size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        const char *v = nullptr;
        if ((v = value("--workload=")) != nullptr) { // spburst-lint: config(key)
            o.suite = v;
            o.suiteExplicit = true;
        } else if ((v = value("--trace=")) != nullptr) { // spburst-lint: config(key)
            o.traces.push_back(std::string("trace:") + v);
        } else if ((v = value("--uops=")) != nullptr) { // spburst-lint: config(key)
            o.uops = std::strtoull(v, nullptr, 10);
        } else if ((v = value("--seed=")) != nullptr) { // spburst-lint: config(key)
            o.seed = std::strtoull(v, nullptr, 10);
        } else if ((v = value("--sample=")) != nullptr) { // spburst-lint: config(key)
            o.sample = sample::SampleSpec::parse(v);
        } else if (arg == "--spb") { // spburst-lint: config(key)
            o.spb = true;
        } else if ((v = value("--scheduler=")) != nullptr) {
            if (std::strcmp(v, "calendar") == 0)
                o.scheduler = SchedulerKind::Calendar;
            else if (std::strcmp(v, "heap") == 0)
                o.scheduler = SchedulerKind::LegacyHeap;
            else
                SPB_FATAL("unknown scheduler '%s'", v);
        } else if (arg == "--no-fast-forward") {
            o.fastForward = false;
        } else if ((v = value("--check=")) != nullptr) {
            check::setLevel(check::parseLevel(v));
        } else if ((v = value("--out=")) != nullptr) {
            o.out = v;
        } else if ((v = value("--baseline=")) != nullptr) {
            o.baseline = v;
        } else if ((v = value("--min-speedup=")) != nullptr) {
            o.minSpeedup = std::strtod(v, nullptr);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            SPB_FATAL("unknown option '%s'", arg.c_str());
        }
    }
    return o;
}

void
printSampleJson(std::FILE *f, const Sample &s)
{
    std::fprintf(
        f,
        "{\"name\": \"%s\", \"uops\": %llu, \"warmed_uops\": %llu, "
        "\"sim_cycles\": %llu, "
        "\"ff_cycles\": %llu, \"events\": %llu, "
        "\"host_seconds\": %.6f, \"uops_per_sec\": %.0f, "
        "\"effective_uops_per_sec\": %.0f, "
        "\"sim_cycles_per_sec\": %.0f, \"events_per_sec\": %.0f}",
        s.name.c_str(), static_cast<unsigned long long>(s.uops),
        static_cast<unsigned long long>(s.warmedUops),
        static_cast<unsigned long long>(s.simCycles),
        static_cast<unsigned long long>(s.ffCycles),
        static_cast<unsigned long long>(s.events), s.hostSeconds,
        static_cast<double>(s.uops) / s.hostSeconds,
        static_cast<double>(s.uops + s.warmedUops) / s.hostSeconds,
        static_cast<double>(s.simCycles) / s.hostSeconds,
        static_cast<double>(s.events) / s.hostSeconds);
}

/**
 * Pull {workload name -> uops_per_sec} out of a prior output file.
 * The format is machine-written by this tool, so a targeted scan for
 * the two fields is all the parsing a baseline needs; the aggregate
 * appears under the name "total". Fatal if the file is unreadable or
 * yields nothing — a silently empty baseline would vacuously pass
 * --min-speedup.
 */
std::map<std::string, double>
parseBaseline(const std::string &path)
{
    std::ifstream in(path);
    if (!in.good())
        SPB_FATAL("cannot read baseline '%s'", path.c_str());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    std::map<std::string, double> rates;
    const std::string name_key = "\"name\": \"";
    const std::string rate_key = "\"uops_per_sec\": ";
    std::size_t pos = 0;
    while ((pos = text.find(name_key, pos)) != std::string::npos) {
        const std::size_t name_start = pos + name_key.size();
        const std::size_t name_end = text.find('"', name_start);
        if (name_end == std::string::npos)
            break;
        pos = name_end;
        const std::size_t obj_end = text.find('}', name_end);
        const std::size_t rate = text.find(rate_key, name_end);
        if (rate == std::string::npos || rate > obj_end)
            continue;
        rates[text.substr(name_start, name_end - name_start)] =
            std::strtod(text.c_str() + rate + rate_key.size(), nullptr);
    }
    if (rates.empty())
        SPB_FATAL("baseline '%s' contains no uops_per_sec entries",
                  path.c_str());
    return rates;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);
    if (o.minSpeedup > 0.0 && o.baseline.empty())
        SPB_FATAL("--min-speedup requires --baseline=FILE");
    // --trace entries join (or, with no explicit --workload, replace)
    // the synthetic suite, matching spburst_run's convention.
    std::vector<std::string> workloads;
    if (o.traces.empty() || o.suiteExplicit)
        workloads = expandSuite(o.suite);
    workloads.insert(workloads.end(), o.traces.begin(),
                     o.traces.end());
    SPB_ASSERT(!workloads.empty(), "empty workload suite");

    std::vector<Sample> samples;
    Sample total;
    total.name = "total";
    for (const std::string &w : workloads) {
        SystemConfig cfg;
        cfg.workload = w;
        cfg.useSpb = o.spb;
        cfg.maxUopsPerCore = o.uops;
        cfg.seed = o.seed;
        cfg.sample = o.sample;
        cfg.scheduler = o.scheduler;
        cfg.fastForward = o.fastForward;

        System sys(cfg);
        const auto t0 = std::chrono::steady_clock::now();
        const SimResult r = sys.run();
        const auto t1 = std::chrono::steady_clock::now();

        Sample s;
        s.name = w;
        s.uops = r.committedUops();
        if (const auto *info = sys.sampleInfo())
            s.warmedUops = info->warmedUops;
        s.simCycles = r.cycles;
        s.ffCycles = sys.fastForwardedCycles();
        s.events = sys.clock().events.executedEvents();
        s.hostSeconds =
            std::chrono::duration<double>(t1 - t0).count();
        if (s.hostSeconds <= 0.0)
            s.hostSeconds = 1e-9; // clock granularity floor
        total.uops += s.uops;
        total.warmedUops += s.warmedUops;
        total.simCycles += s.simCycles;
        total.ffCycles += s.ffCycles;
        total.events += s.events;
        total.hostSeconds += s.hostSeconds;
        std::printf("%-14s %9.0f kuops/s %10.0f kcycles/s "
                    "%8.0f kevents/s",
                    w.c_str(),
                    static_cast<double>(s.uops) / s.hostSeconds / 1e3,
                    static_cast<double>(s.simCycles) / s.hostSeconds /
                        1e3,
                    static_cast<double>(s.events) / s.hostSeconds /
                        1e3);
        if (o.sample.enabled())
            std::printf(" %9.0f keff/s",
                        static_cast<double>(s.uops + s.warmedUops) /
                            s.hostSeconds / 1e3);
        std::printf("  (%.2fs, %llu%% cycles fast-forwarded)\n",
                    s.hostSeconds,
                    static_cast<unsigned long long>(
                        s.simCycles == 0 ? 0
                                         : 100 * s.ffCycles /
                                               s.simCycles));
        samples.push_back(std::move(s));
    }

    std::printf("%-14s %9.0f kuops/s %10.0f kcycles/s %8.0f kevents/s",
                "TOTAL",
                static_cast<double>(total.uops) / total.hostSeconds /
                    1e3,
                static_cast<double>(total.simCycles) /
                    total.hostSeconds / 1e3,
                static_cast<double>(total.events) / total.hostSeconds /
                    1e3);
    if (o.sample.enabled())
        std::printf(" %9.0f keff/s",
                    static_cast<double>(total.uops + total.warmedUops) /
                        total.hostSeconds / 1e3);
    std::printf(" (%.2fs total)\n", total.hostSeconds);

    std::FILE *f = std::fopen(o.out.c_str(), "w");
    if (f == nullptr)
        SPB_FATAL("cannot write '%s'", o.out.c_str());
    std::fprintf(f,
                 "{\n  \"suite\": \"%s\",\n  \"uops_per_workload\": "
                 "%llu,\n  \"spb\": %s,\n  \"sample\": \"%s\",\n"
                 "  \"scheduler\": \"%s\",\n"
                 "  \"fast_forward\": %s,\n  \"check\": \"%s\",\n"
                 "  \"workloads\": [\n",
                 o.suite.c_str(),
                 static_cast<unsigned long long>(o.uops),
                 o.spb ? "true" : "false",
                 o.sample.enabled() ? o.sample.canonical().c_str() : "",
                 schedulerKindName(o.scheduler),
                 o.fastForward ? "true" : "false",
                 check::levelName(check::level()));
    for (std::size_t i = 0; i < samples.size(); ++i) {
        std::fprintf(f, "    ");
        printSampleJson(f, samples[i]);
        std::fprintf(f, i + 1 < samples.size() ? ",\n" : "\n");
    }
    std::fprintf(f, "  ],\n  \"total\": ");
    printSampleJson(f, total);
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", o.out.c_str());

    if (o.baseline.empty())
        return 0;

    // Comparison mode: per-workload and aggregate speedup against a
    // prior run of this tool, gated by the optional --min-speedup
    // floor. The baseline should come from the same host and settings
    // — cross-host uops/s are not comparable.
    const auto base = parseBaseline(o.baseline);
    std::printf("\nvs %s:\n", o.baseline.c_str());
    for (const Sample &s : samples) {
        const double rate =
            static_cast<double>(s.uops) / s.hostSeconds;
        const auto it = base.find(s.name);
        if (it == base.end() || it->second <= 0.0)
            std::printf("  %-14s %9.0f kuops/s   (not in baseline)\n",
                        s.name.c_str(), rate / 1e3);
        else
            std::printf("  %-14s %9.0f kuops/s  %5.2fx\n",
                        s.name.c_str(), rate / 1e3, rate / it->second);
    }
    const auto base_total = base.find("total");
    if (base_total == base.end() || base_total->second <= 0.0)
        SPB_FATAL("baseline '%s' has no total uops_per_sec",
                  o.baseline.c_str());
    const double total_rate =
        static_cast<double>(total.uops) / total.hostSeconds;
    const double speedup = total_rate / base_total->second;
    std::printf("  %-14s %9.0f kuops/s  %5.2fx", "TOTAL",
                total_rate / 1e3, speedup);
    if (o.minSpeedup <= 0.0) {
        std::printf("\n");
        return 0;
    }
    const bool ok = speedup >= o.minSpeedup;
    std::printf("  (floor %.2fx: %s)\n", o.minSpeedup,
                ok ? "ok" : "FAIL");
    return ok ? 0 : 1;
}
