#!/usr/bin/env bash
# Run clang-tidy over the spburst sources with the repo's .clang-tidy
# profile. Used locally and by the `lint` job in CI.
#
# Usage: tools/lint.sh [build-dir]
#
# The build dir must contain compile_commands.json; pass
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON to cmake (CI does). Extra args
# after the build dir are forwarded to clang-tidy.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"
shift || true

# Locate clang-tidy: plain name first, then versioned names (newest
# first). The dev container may not ship it — fail with instructions
# rather than silently passing.
tidy=""
for cand in clang-tidy clang-tidy-{21,20,19,18,17,16,15,14}; do
    if command -v "${cand}" >/dev/null 2>&1; then
        tidy="${cand}"
        break
    fi
done
if [[ -z "${tidy}" ]]; then
    echo "lint.sh: clang-tidy not found on PATH." >&2
    echo "  Install it (e.g. 'apt-get install clang-tidy' or an LLVM" >&2
    echo "  release) or run the 'lint' job in CI, which provisions it." >&2
    exit 2
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    echo "lint.sh: ${build_dir}/compile_commands.json not found." >&2
    echo "  Configure with: cmake -S '${repo_root}' -B '${build_dir}' \\" >&2
    echo "      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 2
fi

# Lint the first-party sources; tests are covered by the compiler's
# strict-warnings gate (SPBURST_WERROR) and gtest macros trip too many
# readability checks to be worth the noise.
mapfile -t files < <(find "${repo_root}/src" "${repo_root}/bench" \
    "${repo_root}/tools" -name '*.cc' | sort)

echo "lint.sh: ${tidy} over ${#files[@]} files (profile: .clang-tidy)"
"${tidy}" -p "${build_dir}" --quiet "$@" "${files[@]}"
echo "lint.sh: clean"
