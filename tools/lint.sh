#!/usr/bin/env bash
# Single entry point for the repo's static analysis. Two gates, in
# order:
#
#   1. spburst_lint — the repo-specific analyzer (src/analysis): the
#      determinism, check-macro, event-callback, and stat-name rules.
#      Built from source here; no external dependency.
#   2. clang-tidy with the repo's .clang-tidy profile.
#
# Usage: tools/lint.sh [build-dir] [extra clang-tidy args...]
#
# The build dir must contain compile_commands.json; pass
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON to cmake (CI does).
#
# Environment:
#   SPBURST_LINT_SARIF  if set, spburst_lint also writes a SARIF 2.1.0
#                       log to this path (CI uploads it as an artifact)
#   SPBURST_LINT_CACHE  incremental cache path (default:
#                       <build-dir>/spburst-lint.cache; set empty to
#                       disable). An unchanged tree replays findings
#                       without re-analyzing; CI persists the file
#                       across runs with actions/cache.
#   GITHUB_ACTIONS      when "true", spburst_lint emits ::error
#                       annotations so findings land on the PR diff
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"
shift || true

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    echo "lint.sh: ${build_dir}/compile_commands.json not found." >&2
    echo "  Configure with: cmake -S '${repo_root}' -B '${build_dir}' \\" >&2
    echo "      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 2
fi

# --- Gate 1: spburst_lint -------------------------------------------------
cmake --build "${build_dir}" --target spburst_lint
lint_args=("--compdb=${build_dir}" "--root=${repo_root}" "--jobs=0")
cache="${SPBURST_LINT_CACHE-"${build_dir}/spburst-lint.cache"}"
if [[ -n "${cache}" ]]; then
    lint_args+=("--cache=${cache}")
fi
if [[ -n "${SPBURST_LINT_SARIF:-}" ]]; then
    lint_args+=("--sarif=${SPBURST_LINT_SARIF}")
fi
if [[ "${GITHUB_ACTIONS:-}" == "true" ]]; then
    lint_args+=("--github")
fi
echo "lint.sh: spburst_lint ${lint_args[*]}"
# The analyzer prints its own wall-clock trailer ("N files, M findings
# in T ms"), with "(cache hit)" on a warm replay.
"${build_dir}/tools/spburst_lint" "${lint_args[@]}"

# --- Gate 2: clang-tidy ---------------------------------------------------
# Locate clang-tidy: plain name first, then versioned names (newest
# first). The dev container may not ship it — fail with instructions
# rather than silently passing.
tidy=""
for cand in clang-tidy clang-tidy-{21,20,19,18,17,16,15,14}; do
    if command -v "${cand}" >/dev/null 2>&1; then
        tidy="${cand}"
        break
    fi
done
if [[ -z "${tidy}" ]]; then
    echo "lint.sh: clang-tidy not found on PATH." >&2
    echo "  Install it (e.g. 'apt-get install clang-tidy' or an LLVM" >&2
    echo "  release) or run the 'lint' job in CI, which provisions it." >&2
    exit 2
fi

# Lint the first-party sources; tests are covered by the compiler's
# strict-warnings gate (SPBURST_WERROR) and gtest macros trip too many
# readability checks to be worth the noise.
mapfile -t files < <(find "${repo_root}/src" "${repo_root}/bench" \
    "${repo_root}/tools" -name '*.cc' | sort)

echo "lint.sh: ${tidy} over ${#files[@]} files (profile: .clang-tidy)"
"${tidy}" -p "${build_dir}" --quiet "$@" "${files[@]}"
echo "lint.sh: clean"
