/**
 * @file
 * `spburst_run` — the command-line driver: run any workload under any
 * configuration and emit text, JSON or CSV. This is the tool a
 * downstream user scripts experiments with.
 *
 *   spburst_run --workload=x264,roms --sb=14 --spb --format=csv
 *   spburst_run --workload=sb-bound --policy=at-execute --uops=500000
 *   spburst_run --workload=dedup --threads=8 --format=json
 *   spburst_run --list-workloads
 */

/* spburst-lint: config-host-only(format, check, scheduler,
       no-fast-forward, jobs, out, list-workloads, help)
   -- output format, assertion level, event-queue implementation,
   warm-up skipping, host parallelism and result sinks never change
   simulated results (the scheduler kinds are verified equivalent by
   the tier-1 determinism suite), so none folds into configKey. */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/check.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "cpu/params.hh"
#include "exp/engine.hh"
#include "sim/report.hh"
#include "sim/system.hh"
#include "trace/workloads.hh"

using namespace spburst;

namespace
{

struct Options
{
    std::vector<std::string> workloads{"x264"};
    bool workloadsExplicit = false;
    /** ChampSim trace workloads (--trace=, repeatable; kept separate
     *  from --workload because trace specs contain commas). */
    std::vector<std::string> traces;
    unsigned sb = 56;
    StorePrefetchPolicy policy = StorePrefetchPolicy::AtCommit;
    bool spb = false;
    bool ideal = false;
    unsigned spbN = 48;
    bool spbDynamic = false;
    bool spbBackward = false;
    L1PrefetcherKind l1pf = L1PrefetcherKind::Stream;
    std::string core = "skylake";
    int threads = 1;
    std::uint64_t uops = 200'000;
    std::uint64_t seed = 1;
    sample::SampleSpec sample;
    std::string format = "text";
    SchedulerKind scheduler = SchedulerKind::Calendar;
    bool fastForward = true;
    unsigned jobs = 0;   // host threads for multi-workload runs
    std::string out;     // optional JSONL result sink
};

void
usage()
{
    std::puts(
        "spburst_run — run the SPB simulator\n"
        "  --workload=NAME[,NAME...] | all | sb-bound | parsec\n"
        "  --trace=FILE[,skip=N][,warmup=N][,roi=N]\n"
        "                         replay a ChampSim trace (.champsim,\n"
        "                         .gz or .xz; repeatable)\n"
        "  --sb=N                 store-buffer entries (default 56)\n"
        "  --policy=none|at-execute|at-commit   (default at-commit)\n"
        "  --spb                  enable Store-Prefetch Bursts\n"
        "  --spb-n=N              SPB window length (default 48)\n"
        "  --spb-dynamic          dynamic-threshold variant\n"
        "  --spb-backward         backward-burst extension\n"
        "  --ideal                ideal (1024-entry) SB upper bound\n"
        "  --l1pf=none|stream|aggressive|adaptive|best-offset|dspatch\n"
        "  --core=skylake|SLM|NHL|HSW|SKL|SNC    (default skylake)\n"
        "  --threads=N            cores/threads (default 1)\n"
        "  --uops=N               committed uops per core (default 200k)\n"
        "  --seed=N               workload seed (default 1)\n"
        "  --sample=interval=N,window=M[,warmup=K][,ci=P][,min=W]\n"
        "          [,ckpt=FILE]   SMARTS-style interval sampling: warm\n"
        "                         functionally, measure M-uop detailed\n"
        "                         windows, report mean +/- 95% CI; ckpt=\n"
        "                         reuses warm state across a policy sweep\n"
        "  --format=text|json|csv (default text)\n"
        "  --check=off|fast|full  invariant checking level (default fast)\n"
        "  --scheduler=calendar|heap   event-queue implementation\n"
        "                         (host-side only; default calendar)\n"
        "  --no-fast-forward      tick every cycle even when all cores\n"
        "                         are quiescent (host-side only)\n"
        "  --jobs=N               host threads for multi-workload runs\n"
        "                         (0 = all hardware threads; default)\n"
        "  --out=FILE             also append per-run JSONL results\n"
        "  --list-workloads       print the workload registry and exit");
}

std::vector<std::string>
expandWorkloads(const std::string &spec)
{
    if (spec == "all")
        return allSpecNames();
    if (spec == "sb-bound")
        return sbBoundSpecNames();
    if (spec == "parsec")
        return allParsecNames();
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos != std::string::npos) {
        const std::size_t comma = spec.find(',', pos);
        out.push_back(spec.substr(
            pos, comma == std::string::npos ? comma : comma - pos));
        pos = comma == std::string::npos ? comma : comma + 1;
    }
    return out;
}

CoreParams
coreByName(const std::string &name)
{
    if (name == "skylake")
        return skylakeParams();
    for (const CoreParams &p : tableIIPresets())
        if (p.name == name)
            return p;
    SPB_FATAL("unknown core preset '%s'", name.c_str());
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            const std::size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        const char *v = nullptr;
        if ((v = value("--workload=")) != nullptr) { // spburst-lint: config(key)
            o.workloads = expandWorkloads(v);
            o.workloadsExplicit = true;
        } else if ((v = value("--trace=")) != nullptr) { // spburst-lint: config(key)
            o.traces.push_back(std::string("trace:") + v);
        } else if ((v = value("--sb=")) != nullptr) { // spburst-lint: config(key)
            o.sb = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if ((v = value("--policy=")) != nullptr) { // spburst-lint: config(key)
            if (std::strcmp(v, "none") == 0)
                o.policy = StorePrefetchPolicy::None;
            else if (std::strcmp(v, "at-execute") == 0)
                o.policy = StorePrefetchPolicy::AtExecute;
            else if (std::strcmp(v, "at-commit") == 0)
                o.policy = StorePrefetchPolicy::AtCommit;
            else
                SPB_FATAL("unknown policy '%s'", v);
        } else if (arg == "--spb") { // spburst-lint: config(key)
            o.spb = true;
        } else if ((v = value("--spb-n=")) != nullptr) { // spburst-lint: config(key)
            o.spbN = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--spb-dynamic") { // spburst-lint: config(key)
            o.spbDynamic = true;
        } else if (arg == "--spb-backward") { // spburst-lint: config(key)
            o.spbBackward = true;
        } else if (arg == "--ideal") { // spburst-lint: config(key)
            o.ideal = true;
        } else if ((v = value("--l1pf=")) != nullptr) { // spburst-lint: config(key)
            if (std::strcmp(v, "none") == 0)
                o.l1pf = L1PrefetcherKind::None;
            else if (std::strcmp(v, "stream") == 0)
                o.l1pf = L1PrefetcherKind::Stream;
            else if (std::strcmp(v, "aggressive") == 0)
                o.l1pf = L1PrefetcherKind::Aggressive;
            else if (std::strcmp(v, "adaptive") == 0)
                o.l1pf = L1PrefetcherKind::Adaptive;
            else if (std::strcmp(v, "best-offset") == 0 ||
                     std::strcmp(v, "bop") == 0)
                o.l1pf = L1PrefetcherKind::BestOffset;
            else if (std::strcmp(v, "dspatch") == 0)
                o.l1pf = L1PrefetcherKind::DSPatch;
            else
                SPB_FATAL("unknown prefetcher '%s'", v);
        } else if ((v = value("--core=")) != nullptr) { // spburst-lint: config(key)
            o.core = v;
        } else if ((v = value("--threads=")) != nullptr) { // spburst-lint: config(key)
            o.threads = static_cast<int>(std::strtol(v, nullptr, 10));
        } else if ((v = value("--uops=")) != nullptr) { // spburst-lint: config(key)
            o.uops = std::strtoull(v, nullptr, 10);
        } else if ((v = value("--seed=")) != nullptr) { // spburst-lint: config(key)
            o.seed = std::strtoull(v, nullptr, 10);
        } else if ((v = value("--sample=")) != nullptr) { // spburst-lint: config(key)
            o.sample = sample::SampleSpec::parse(v);
        } else if ((v = value("--format=")) != nullptr) {
            o.format = v;
        } else if ((v = value("--check=")) != nullptr) {
            check::setLevel(check::parseLevel(v));
        } else if ((v = value("--scheduler=")) != nullptr) {
            if (std::strcmp(v, "calendar") == 0)
                o.scheduler = SchedulerKind::Calendar;
            else if (std::strcmp(v, "heap") == 0)
                o.scheduler = SchedulerKind::LegacyHeap;
            else
                SPB_FATAL("unknown scheduler '%s'", v);
        } else if (arg == "--no-fast-forward") {
            o.fastForward = false;
        } else if ((v = value("--jobs=")) != nullptr) {
            o.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if ((v = value("--out=")) != nullptr) {
            o.out = v;
        } else if (arg == "--list-workloads") {
            std::printf("%-14s %-8s %s\n", "name", "suite", "SB-bound");
            for (const auto &p : specProfiles())
                std::printf("%-14s %-8s %s\n", p.name.c_str(), "spec",
                            p.sbBound ? "yes" : "no");
            for (const auto &p : parsecProfiles())
                std::printf("%-14s %-8s %s\n", p.name.c_str(), "parsec",
                            p.sbBound ? "yes" : "no");
            std::exit(0);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            SPB_FATAL("unknown option '%s'", arg.c_str());
        }
    }
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);

    // --trace entries join (or, with no explicit --workload, replace)
    // the workload list; downstream they are ordinary workload names.
    if (!o.traces.empty() && !o.workloadsExplicit)
        o.workloads.clear();
    o.workloads.insert(o.workloads.end(), o.traces.begin(),
                       o.traces.end());

    // The multi-workload path runs on the experiment engine: one job
    // per workload, executed on --jobs host threads, results returned
    // in workload order (bit-identical to the old serial loop).
    std::vector<exp::Job> jobs;
    for (const auto &w : o.workloads) {
        SystemConfig cfg = makeConfig(w, o.sb, o.policy, o.spb, o.ideal);
        cfg.coreParams = coreByName(o.core);
        if (o.sb != 0)
            cfg.sbSize = o.sb;
        cfg.spb.checkInterval = o.spbN;
        cfg.spb.dynamicThreshold = o.spbDynamic;
        cfg.spb.backwardBursts = o.spbBackward;
        cfg.l1Prefetcher = o.l1pf;
        cfg.threads = o.threads;
        cfg.maxUopsPerCore = o.uops;
        cfg.seed = o.seed;
        cfg.sample = o.sample;
        cfg.scheduler = o.scheduler;
        cfg.fastForward = o.fastForward;
        jobs.push_back(exp::Job{exp::configKey(cfg), std::move(cfg)});
    }

    exp::EngineOptions engine;
    engine.hostThreads = jobs.size() > 1 ? o.jobs : 1;
    engine.jsonlPath = o.out;
    const exp::ExperimentReport report = exp::runJobs(jobs, engine);

    std::vector<SimResult> results;
    results.reserve(report.outcomes.size());
    for (const auto &outcome : report.outcomes) {
        if (outcome.status != exp::JobStatus::Completed)
            SPB_FATAL("job '%s' failed: %s", outcome.key.c_str(),
                      outcome.error.c_str());
        results.push_back(outcome.result);
    }

    if (o.format == "json") {
        std::printf("%s\n", toJson(results).c_str());
    } else if (o.format == "csv") {
        std::printf("%s", toCsv(results).c_str());
    } else if (o.format == "text") {
        TextTable table("results",
                        {"workload", "cycles", "IPC", "SB-stall%",
                         "L1D load miss%", "drain miss%", "SPB bursts",
                         "energy (uJ)"});
        for (const auto &r : results) {
            const auto &l1 = r.l1d[0];
            table.addRow(
                {r.workload, std::to_string(r.cycles),
                 formatDouble(r.ipc(), 3),
                 formatPercent(r.sbStallRatio()),
                 formatPercent(ratio(
                     static_cast<double>(l1.loadMisses),
                     static_cast<double>(l1.loadHits + l1.loadMisses))),
                 formatPercent(
                     ratio(static_cast<double>(l1.storeOwnMisses),
                           static_cast<double>(l1.storeOwnHits +
                                               l1.storeOwnMisses))),
                 std::to_string(r.spbs.empty() ? 0 : r.spbs[0].bursts),
                 formatDouble(r.energy.totalPj() * 1e-6, 1)});
        }
        table.print();
        // In sampled runs the table rows cover only the detailed
        // windows; the per-workload estimate lines carry the error bars.
        for (const auto &r : results) {
            if (r.sample.entries().empty())
                continue;
            std::printf("%s: sampled %d windows: IPC %.3f +/- %.3f "
                        "(95%% CI), SB stalls/kuop %.2f +/- %.2f\n",
                        r.workload.c_str(),
                        static_cast<int>(r.sample.get("windows")),
                        r.sample.get("ipc_mean"),
                        r.sample.get("ipc_ci95"),
                        r.sample.get("sb_stall_per_kuop_mean"),
                        r.sample.get("sb_stall_per_kuop_ci95"));
        }
    } else {
        SPB_FATAL("unknown format '%s'", o.format.c_str());
    }
    return 0;
}
