/**
 * @file
 * `spburst_sweep` — declarative design-space sweeps on the experiment
 * engine: a (workload × SB × strategy × N × prefetcher × core) grid
 * expands into independent jobs that run on a work-stealing host
 * thread pool, checkpoint each completed job to a JSONL file, and
 * resume an interrupted sweep without redoing finished work.
 *
 *   spburst_sweep --workload=sb-bound --sb=14,28,56 \
 *       --strategy=at-commit,spb,ideal --out=sweep.jsonl --jobs=8
 *   spburst_sweep --workload=all --sb=14 --strategy=spb \
 *       --spb-n=8,16,24,32,48,64 --out=nsweep.jsonl --resume
 *
 * Results are bit-identical for any --jobs value; only the JSONL line
 * order depends on the schedule (it is completion order), so compare
 * files with `sort`.
 */

/* spburst-lint: config-host-only(check, jobs, shards, out, resume,
       timeout-s, retries, dry-run, no-summary, quiet, help)
   -- assertion level, host parallelism and process sharding, result
   sinks and sweep scheduling (resume/timeout/retry) never change
   per-job simulated results: every job is keyed and seeded
   independently of the host schedule. */

#include <cstdio>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "check/check.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "cpu/params.hh"
#include "exp/engine.hh"
#include "sim/report.hh"
#include "trace/workloads.hh"

using namespace spburst;

namespace
{

struct Options
{
    std::vector<std::string> workloads;
    /** ChampSim trace workloads (--trace=, repeatable; kept separate
     *  from --workload because trace specs contain commas). */
    std::vector<std::string> traces;
    std::vector<unsigned> sbs{56};
    std::vector<std::string> strategies{"at-commit"};
    std::vector<unsigned> spbNs;
    std::vector<std::string> l1pfs;
    std::vector<std::string> cores;
    int simThreads = 1;
    std::uint64_t uops = 100'000;
    std::uint64_t seed = 1;
    sample::SampleSpec sample;
    bool perJobSeeds = false;

    unsigned jobs = 0;
    unsigned shards = 1;
    std::string out;
    bool resume = false;
    double timeoutS = 0.0;
    unsigned retries = 0; //!< extra attempts after the first
    bool dryRun = false;
    bool quiet = false;
    bool summary = true;
};

void
usage()
{
    std::puts(
        "spburst_sweep — parallel, checkpointed configuration sweeps\n"
        "grid axes (comma lists; each multiplies the grid):\n"
        "  --workload=NAMES | all | sb-bound | parsec\n"
        "  --trace=FILE[,skip=N][,warmup=N][,roi=N]\n"
        "                         ChampSim trace workload (repeatable;\n"
        "                         --workload and/or --trace required)\n"
        "  --sb=N,...             SB sizes (default 56)\n"
        "  --strategy=none|at-execute|at-commit|spb|ideal,...\n"
        "  --spb-n=N,...          SPB window lengths\n"
        "  --l1pf=none|stream|aggressive|adaptive|best-offset|dspatch,...\n"
        "  --core=skylake|SLM|NHL|HSW|SKL|SNC,...\n"
        "per-job configuration:\n"
        "  --sim-threads=N        simulated cores per job (default 1)\n"
        "  --uops=N               committed uops per core (default 100k)\n"
        "  --seed=N               base seed (default 1)\n"
        "  --sample=interval=N,window=M[,warmup=K][,ci=P][,min=W]\n"
        "          [,ckpt=FILE]   interval sampling for every job; with\n"
        "                         ckpt= the whole sweep warms once and\n"
        "                         replays the checkpoint per policy\n"
        "  --per-job-seeds        derive a distinct seed per grid point\n"
        "  --check=off|fast|full  invariant checking level (default fast)\n"
        "engine:\n"
        "  --jobs=N               host threads (0 = all hardware; default)\n"
        "  --shards=N             fork N worker processes; each runs a\n"
        "                         round-robin slice of the grid with its\n"
        "                         own --jobs pool and the parent merges\n"
        "                         the per-shard JSONL files (default 1)\n"
        "  --out=FILE             JSONL result sink (checkpointed)\n"
        "  --resume               skip jobs already present in --out\n"
        "  --timeout-s=S          per-attempt wall-clock timeout\n"
        "  --retries=N            extra attempts per failed job\n"
        "  --dry-run              print the job list and exit\n"
        "  --no-summary           skip the final summary table\n"
        "  --quiet                no live progress line");
}

std::vector<std::string>
splitList(const std::string &spec)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(spec.substr(pos));
            break;
        }
        out.push_back(spec.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

std::vector<unsigned>
splitUnsigned(const std::string &spec)
{
    std::vector<unsigned> out;
    for (const auto &item : splitList(spec))
        out.push_back(
            static_cast<unsigned>(std::strtoul(item.c_str(), nullptr,
                                               10)));
    return out;
}

std::vector<std::string>
expandWorkloads(const std::string &spec)
{
    if (spec == "all")
        return allSpecNames();
    if (spec == "sb-bound")
        return sbBoundSpecNames();
    if (spec == "parsec")
        return allParsecNames();
    return splitList(spec);
}

exp::ConfigVariant
strategyVariant(const std::string &name)
{
    StorePrefetchPolicy policy;
    bool spb = false, ideal = false;
    if (name == "none") {
        policy = StorePrefetchPolicy::None;
    } else if (name == "at-execute") {
        policy = StorePrefetchPolicy::AtExecute;
    } else if (name == "at-commit") {
        policy = StorePrefetchPolicy::AtCommit;
    } else if (name == "spb") {
        policy = StorePrefetchPolicy::AtCommit;
        spb = true;
    } else if (name == "ideal") {
        policy = StorePrefetchPolicy::AtCommit;
        ideal = true;
    } else {
        SPB_FATAL("unknown strategy '%s'", name.c_str());
    }
    return {name, [policy, spb, ideal](SystemConfig &cfg) {
                cfg.policy = policy;
                cfg.useSpb = spb;
                cfg.idealSb = ideal;
            }};
}

exp::ConfigVariant
l1pfVariant(const std::string &name)
{
    L1PrefetcherKind kind;
    if (name == "none")
        kind = L1PrefetcherKind::None;
    else if (name == "stream")
        kind = L1PrefetcherKind::Stream;
    else if (name == "aggressive")
        kind = L1PrefetcherKind::Aggressive;
    else if (name == "adaptive")
        kind = L1PrefetcherKind::Adaptive;
    else if (name == "best-offset" || name == "bop")
        kind = L1PrefetcherKind::BestOffset;
    else if (name == "dspatch")
        kind = L1PrefetcherKind::DSPatch;
    else
        SPB_FATAL("unknown prefetcher '%s'", name.c_str());
    return {name,
            [kind](SystemConfig &cfg) { cfg.l1Prefetcher = kind; }};
}

exp::ConfigVariant
coreVariant(const std::string &name)
{
    CoreParams params = skylakeParams();
    bool found = name == "skylake";
    if (!found) {
        for (const CoreParams &p : tableIIPresets()) {
            if (p.name == name) {
                params = p;
                found = true;
                break;
            }
        }
    }
    if (!found)
        SPB_FATAL("unknown core preset '%s'", name.c_str());
    return {name,
            [params](SystemConfig &cfg) { cfg.coreParams = params; }};
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            const std::size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        const char *v = nullptr;
        if ((v = value("--workload=")) != nullptr) { // spburst-lint: config(key)
            o.workloads = expandWorkloads(v);
        } else if ((v = value("--trace=")) != nullptr) { // spburst-lint: config(key)
            o.traces.push_back(std::string("trace:") + v);
        } else if ((v = value("--sb=")) != nullptr) { // spburst-lint: config(key)
            o.sbs = splitUnsigned(v);
        } else if ((v = value("--strategy=")) != nullptr) { // spburst-lint: config(key)
            o.strategies = splitList(v);
        } else if ((v = value("--spb-n=")) != nullptr) { // spburst-lint: config(key)
            o.spbNs = splitUnsigned(v);
        } else if ((v = value("--l1pf=")) != nullptr) { // spburst-lint: config(key)
            o.l1pfs = splitList(v);
        } else if ((v = value("--core=")) != nullptr) { // spburst-lint: config(key)
            o.cores = splitList(v);
        } else if ((v = value("--sim-threads=")) != nullptr) { // spburst-lint: config(key)
            o.simThreads =
                static_cast<int>(std::strtol(v, nullptr, 10));
        } else if ((v = value("--uops=")) != nullptr) { // spburst-lint: config(key)
            o.uops = std::strtoull(v, nullptr, 10);
        } else if ((v = value("--seed=")) != nullptr) { // spburst-lint: config(key)
            o.seed = std::strtoull(v, nullptr, 10);
        } else if ((v = value("--sample=")) != nullptr) { // spburst-lint: config(key)
            o.sample = sample::SampleSpec::parse(v);
        } else if (arg == "--per-job-seeds") { // spburst-lint: config(key)
            o.perJobSeeds = true;
        } else if ((v = value("--check=")) != nullptr) {
            check::setLevel(check::parseLevel(v));
        } else if ((v = value("--jobs=")) != nullptr) {
            o.jobs = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if ((v = value("--shards=")) != nullptr) {
            o.shards = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
            if (o.shards == 0)
                o.shards = 1;
        } else if ((v = value("--out=")) != nullptr) {
            o.out = v;
        } else if (arg == "--resume") {
            o.resume = true;
        } else if ((v = value("--timeout-s=")) != nullptr) {
            o.timeoutS = std::strtod(v, nullptr);
        } else if ((v = value("--retries=")) != nullptr) {
            o.retries = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (arg == "--dry-run") {
            o.dryRun = true;
        } else if (arg == "--no-summary") {
            o.summary = false;
        } else if (arg == "--quiet") {
            o.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            SPB_FATAL("unknown option '%s'", arg.c_str());
        }
    }
    o.workloads.insert(o.workloads.end(), o.traces.begin(),
                       o.traces.end());
    if (o.workloads.empty()) {
        usage();
        SPB_FATAL("--workload or --trace is required");
    }
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "spburst_sweep";
    spec.workloads = o.workloads;
    spec.base.threads = o.simThreads;
    spec.base.maxUopsPerCore = o.uops;
    spec.base.seed = o.seed;
    spec.base.sample = o.sample;
    spec.perJobSeeds = o.perJobSeeds;

    spec.axes.push_back(exp::sbSizeAxis(o.sbs));
    {
        exp::Axis strategies{"strategy", {}};
        for (const auto &name : o.strategies)
            strategies.variants.push_back(strategyVariant(name));
        spec.axes.push_back(std::move(strategies));
    }
    if (!o.spbNs.empty())
        spec.axes.push_back(exp::spbWindowAxis(o.spbNs));
    if (!o.l1pfs.empty()) {
        exp::Axis axis{"l1pf", {}};
        for (const auto &name : o.l1pfs)
            axis.variants.push_back(l1pfVariant(name));
        spec.axes.push_back(std::move(axis));
    }
    if (!o.cores.empty()) {
        exp::Axis axis{"core", {}};
        for (const auto &name : o.cores)
            axis.variants.push_back(coreVariant(name));
        spec.axes.push_back(std::move(axis));
    }

    const std::vector<exp::Job> jobs = spec.expand();
    if (o.dryRun) {
        for (const auto &job : jobs)
            std::printf("%s\n", job.key.c_str());
        std::printf("# %zu jobs\n", jobs.size());
        return 0;
    }

    exp::EngineOptions engine;
    engine.hostThreads = o.jobs;
    engine.shards = o.shards;
    engine.jsonlPath = o.out;
    engine.resume = o.resume;
    engine.timeoutSeconds = o.timeoutS;
    engine.maxAttempts = 1 + o.retries;
    engine.progress = !o.quiet && isatty(fileno(stderr));

    const exp::ExperimentReport report = exp::runJobs(jobs, engine);

    if (o.summary) {
        TextTable table("sweep results",
                        {"job", "cycles", "IPC", "SB-stall%", "status"});
        for (const auto &out : report.outcomes) {
            if (out.status == exp::JobStatus::Failed) {
                table.addRow({out.key, "-", "-", "-",
                              "FAILED: " + out.error});
                continue;
            }
            table.addRow(
                {out.key,
                 formatDouble(out.stats.get("cycles"), 0),
                 formatDouble(out.stats.get("ipc"), 3),
                 formatPercent(out.stats.get("sb_stall_ratio")),
                 out.status == exp::JobStatus::Resumed ? "resumed"
                                                       : "done"});
        }
        table.print();
    }

    std::fprintf(stderr,
                 "%zu jobs: %zu run, %zu resumed, %zu failed on %u "
                 "host threads in %.1fs\n",
                 report.outcomes.size(), report.completed(),
                 report.resumed(), report.failed(), report.hostThreads,
                 report.wallSeconds);
    return report.failed() == 0 ? 0 : 1;
}
