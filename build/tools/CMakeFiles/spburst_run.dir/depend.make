# Empty dependencies file for spburst_run.
# This may be replaced when dependencies are built.
