file(REMOVE_RECURSE
  "CMakeFiles/spburst_run.dir/spburst_run.cc.o"
  "CMakeFiles/spburst_run.dir/spburst_run.cc.o.d"
  "spburst_run"
  "spburst_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spburst_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
