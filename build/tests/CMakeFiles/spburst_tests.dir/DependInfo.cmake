
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/spburst_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_claims.cc" "tests/CMakeFiles/spburst_tests.dir/test_claims.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_claims.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/spburst_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/spburst_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_core_more.cc" "tests/CMakeFiles/spburst_tests.dir/test_core_more.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_core_more.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/spburst_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_interconnect.cc" "tests/CMakeFiles/spburst_tests.dir/test_interconnect.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_interconnect.cc.o.d"
  "/root/repo/tests/test_mem_system.cc" "tests/CMakeFiles/spburst_tests.dir/test_mem_system.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_mem_system.cc.o.d"
  "/root/repo/tests/test_prefetch.cc" "tests/CMakeFiles/spburst_tests.dir/test_prefetch.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_prefetch.cc.o.d"
  "/root/repo/tests/test_report.cc" "tests/CMakeFiles/spburst_tests.dir/test_report.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_report.cc.o.d"
  "/root/repo/tests/test_smt.cc" "tests/CMakeFiles/spburst_tests.dir/test_smt.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_smt.cc.o.d"
  "/root/repo/tests/test_spb.cc" "tests/CMakeFiles/spburst_tests.dir/test_spb.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_spb.cc.o.d"
  "/root/repo/tests/test_spb_extensions.cc" "tests/CMakeFiles/spburst_tests.dir/test_spb_extensions.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_spb_extensions.cc.o.d"
  "/root/repo/tests/test_store_buffer.cc" "tests/CMakeFiles/spburst_tests.dir/test_store_buffer.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_store_buffer.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/spburst_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_tlb_bop.cc" "tests/CMakeFiles/spburst_tests.dir/test_tlb_bop.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_tlb_bop.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/spburst_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/spburst_tests.dir/test_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/spburst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/spburst_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/spburst_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/spburst_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spburst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/spburst_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/spburst_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spburst_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
