# Empty compiler generated dependencies file for spburst_tests.
# This may be replaced when dependencies are built.
