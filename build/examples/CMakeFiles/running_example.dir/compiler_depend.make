# Empty compiler generated dependencies file for running_example.
# This may be replaced when dependencies are built.
