file(REMOVE_RECURSE
  "CMakeFiles/smt_partitioning.dir/smt_partitioning.cpp.o"
  "CMakeFiles/smt_partitioning.dir/smt_partitioning.cpp.o.d"
  "smt_partitioning"
  "smt_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
