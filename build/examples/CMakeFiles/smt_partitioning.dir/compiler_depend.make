# Empty compiler generated dependencies file for smt_partitioning.
# This may be replaced when dependencies are built.
