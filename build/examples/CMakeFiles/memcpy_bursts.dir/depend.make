# Empty dependencies file for memcpy_bursts.
# This may be replaced when dependencies are built.
