file(REMOVE_RECURSE
  "CMakeFiles/memcpy_bursts.dir/memcpy_bursts.cpp.o"
  "CMakeFiles/memcpy_bursts.dir/memcpy_bursts.cpp.o.d"
  "memcpy_bursts"
  "memcpy_bursts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcpy_bursts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
