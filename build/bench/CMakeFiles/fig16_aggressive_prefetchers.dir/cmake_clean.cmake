file(REMOVE_RECURSE
  "CMakeFiles/fig16_aggressive_prefetchers.dir/fig16_aggressive_prefetchers.cc.o"
  "CMakeFiles/fig16_aggressive_prefetchers.dir/fig16_aggressive_prefetchers.cc.o.d"
  "fig16_aggressive_prefetchers"
  "fig16_aggressive_prefetchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_aggressive_prefetchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
