# Empty compiler generated dependencies file for fig16_aggressive_prefetchers.
# This may be replaced when dependencies are built.
