file(REMOVE_RECURSE
  "CMakeFiles/fig09_per_app_sb_stalls.dir/fig09_per_app_sb_stalls.cc.o"
  "CMakeFiles/fig09_per_app_sb_stalls.dir/fig09_per_app_sb_stalls.cc.o.d"
  "fig09_per_app_sb_stalls"
  "fig09_per_app_sb_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_per_app_sb_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
