# Empty dependencies file for fig09_per_app_sb_stalls.
# This may be replaced when dependencies are built.
