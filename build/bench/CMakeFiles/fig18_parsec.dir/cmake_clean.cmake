file(REMOVE_RECURSE
  "CMakeFiles/fig18_parsec.dir/fig18_parsec.cc.o"
  "CMakeFiles/fig18_parsec.dir/fig18_parsec.cc.o.d"
  "fig18_parsec"
  "fig18_parsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_parsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
