# Empty dependencies file for fig18_parsec.
# This may be replaced when dependencies are built.
