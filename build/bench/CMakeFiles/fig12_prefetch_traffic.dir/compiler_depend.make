# Empty compiler generated dependencies file for fig12_prefetch_traffic.
# This may be replaced when dependencies are built.
