# Empty dependencies file for fig03_stall_locations.
# This may be replaced when dependencies are built.
