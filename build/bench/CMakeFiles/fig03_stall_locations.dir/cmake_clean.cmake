file(REMOVE_RECURSE
  "CMakeFiles/fig03_stall_locations.dir/fig03_stall_locations.cc.o"
  "CMakeFiles/fig03_stall_locations.dir/fig03_stall_locations.cc.o.d"
  "fig03_stall_locations"
  "fig03_stall_locations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_stall_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
