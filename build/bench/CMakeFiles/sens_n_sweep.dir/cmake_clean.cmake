file(REMOVE_RECURSE
  "CMakeFiles/sens_n_sweep.dir/sens_n_sweep.cc.o"
  "CMakeFiles/sens_n_sweep.dir/sens_n_sweep.cc.o.d"
  "sens_n_sweep"
  "sens_n_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_n_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
