# Empty compiler generated dependencies file for sens_n_sweep.
# This may be replaced when dependencies are built.
