# Empty dependencies file for sens_sb_size_sweep.
# This may be replaced when dependencies are built.
