file(REMOVE_RECURSE
  "CMakeFiles/sens_sb_size_sweep.dir/sens_sb_size_sweep.cc.o"
  "CMakeFiles/sens_sb_size_sweep.dir/sens_sb_size_sweep.cc.o.d"
  "sens_sb_size_sweep"
  "sens_sb_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_sb_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
