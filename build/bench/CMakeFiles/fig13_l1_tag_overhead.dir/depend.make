# Empty dependencies file for fig13_l1_tag_overhead.
# This may be replaced when dependencies are built.
