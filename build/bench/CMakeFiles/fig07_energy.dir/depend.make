# Empty dependencies file for fig07_energy.
# This may be replaced when dependencies are built.
