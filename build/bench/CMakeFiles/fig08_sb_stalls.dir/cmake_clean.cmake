file(REMOVE_RECURSE
  "CMakeFiles/fig08_sb_stalls.dir/fig08_sb_stalls.cc.o"
  "CMakeFiles/fig08_sb_stalls.dir/fig08_sb_stalls.cc.o.d"
  "fig08_sb_stalls"
  "fig08_sb_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_sb_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
