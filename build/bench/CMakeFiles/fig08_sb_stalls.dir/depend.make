# Empty dependencies file for fig08_sb_stalls.
# This may be replaced when dependencies are built.
