# Empty compiler generated dependencies file for fig01_sb_stall_ratio.
# This may be replaced when dependencies are built.
