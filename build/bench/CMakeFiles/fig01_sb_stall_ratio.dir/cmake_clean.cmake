file(REMOVE_RECURSE
  "CMakeFiles/fig01_sb_stall_ratio.dir/fig01_sb_stall_ratio.cc.o"
  "CMakeFiles/fig01_sb_stall_ratio.dir/fig01_sb_stall_ratio.cc.o.d"
  "fig01_sb_stall_ratio"
  "fig01_sb_stall_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_sb_stall_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
