# Empty dependencies file for smt_validation.
# This may be replaced when dependencies are built.
