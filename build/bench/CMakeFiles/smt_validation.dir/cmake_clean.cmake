file(REMOVE_RECURSE
  "CMakeFiles/smt_validation.dir/smt_validation.cc.o"
  "CMakeFiles/smt_validation.dir/smt_validation.cc.o.d"
  "smt_validation"
  "smt_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
