file(REMOVE_RECURSE
  "CMakeFiles/fig17_core_configs.dir/fig17_core_configs.cc.o"
  "CMakeFiles/fig17_core_configs.dir/fig17_core_configs.cc.o.d"
  "fig17_core_configs"
  "fig17_core_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_core_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
