# Empty compiler generated dependencies file for fig17_core_configs.
# This may be replaced when dependencies are built.
