# Empty compiler generated dependencies file for fig15_per_app_exec_stalls.
# This may be replaced when dependencies are built.
