file(REMOVE_RECURSE
  "CMakeFiles/fig15_per_app_exec_stalls.dir/fig15_per_app_exec_stalls.cc.o"
  "CMakeFiles/fig15_per_app_exec_stalls.dir/fig15_per_app_exec_stalls.cc.o.d"
  "fig15_per_app_exec_stalls"
  "fig15_per_app_exec_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_per_app_exec_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
