file(REMOVE_RECURSE
  "CMakeFiles/fig10_issue_stalls.dir/fig10_issue_stalls.cc.o"
  "CMakeFiles/fig10_issue_stalls.dir/fig10_issue_stalls.cc.o.d"
  "fig10_issue_stalls"
  "fig10_issue_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_issue_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
