# Empty dependencies file for fig10_issue_stalls.
# This may be replaced when dependencies are built.
