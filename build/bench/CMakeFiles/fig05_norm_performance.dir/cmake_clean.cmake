file(REMOVE_RECURSE
  "CMakeFiles/fig05_norm_performance.dir/fig05_norm_performance.cc.o"
  "CMakeFiles/fig05_norm_performance.dir/fig05_norm_performance.cc.o.d"
  "fig05_norm_performance"
  "fig05_norm_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_norm_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
