# Empty dependencies file for fig05_norm_performance.
# This may be replaced when dependencies are built.
