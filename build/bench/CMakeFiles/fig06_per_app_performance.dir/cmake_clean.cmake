file(REMOVE_RECURSE
  "CMakeFiles/fig06_per_app_performance.dir/fig06_per_app_performance.cc.o"
  "CMakeFiles/fig06_per_app_performance.dir/fig06_per_app_performance.cc.o.d"
  "fig06_per_app_performance"
  "fig06_per_app_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_per_app_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
