# Empty dependencies file for fig06_per_app_performance.
# This may be replaced when dependencies are built.
