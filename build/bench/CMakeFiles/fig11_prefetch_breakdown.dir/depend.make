# Empty dependencies file for fig11_prefetch_breakdown.
# This may be replaced when dependencies are built.
