file(REMOVE_RECURSE
  "libspburst_bench_common.a"
)
