# Empty dependencies file for spburst_bench_common.
# This may be replaced when dependencies are built.
