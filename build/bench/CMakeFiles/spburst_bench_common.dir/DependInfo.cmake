
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_common.cc" "bench/CMakeFiles/spburst_bench_common.dir/bench_common.cc.o" "gcc" "bench/CMakeFiles/spburst_bench_common.dir/bench_common.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/spburst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/spburst_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/spburst_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/spburst_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spburst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/spburst_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/spburst_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spburst_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
