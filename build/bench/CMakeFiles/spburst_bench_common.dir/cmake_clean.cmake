file(REMOVE_RECURSE
  "CMakeFiles/spburst_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/spburst_bench_common.dir/bench_common.cc.o.d"
  "libspburst_bench_common.a"
  "libspburst_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spburst_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
