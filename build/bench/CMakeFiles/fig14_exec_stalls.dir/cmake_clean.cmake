file(REMOVE_RECURSE
  "CMakeFiles/fig14_exec_stalls.dir/fig14_exec_stalls.cc.o"
  "CMakeFiles/fig14_exec_stalls.dir/fig14_exec_stalls.cc.o.d"
  "fig14_exec_stalls"
  "fig14_exec_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_exec_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
