# Empty dependencies file for spburst_energy.
# This may be replaced when dependencies are built.
