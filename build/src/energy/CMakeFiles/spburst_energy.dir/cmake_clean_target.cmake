file(REMOVE_RECURSE
  "libspburst_energy.a"
)
