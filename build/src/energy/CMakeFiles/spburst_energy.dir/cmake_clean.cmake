file(REMOVE_RECURSE
  "CMakeFiles/spburst_energy.dir/energy_model.cc.o"
  "CMakeFiles/spburst_energy.dir/energy_model.cc.o.d"
  "libspburst_energy.a"
  "libspburst_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spburst_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
