file(REMOVE_RECURSE
  "libspburst_sim.a"
)
