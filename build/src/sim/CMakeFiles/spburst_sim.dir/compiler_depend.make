# Empty compiler generated dependencies file for spburst_sim.
# This may be replaced when dependencies are built.
