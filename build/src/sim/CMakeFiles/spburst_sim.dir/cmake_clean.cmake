file(REMOVE_RECURSE
  "CMakeFiles/spburst_sim.dir/report.cc.o"
  "CMakeFiles/spburst_sim.dir/report.cc.o.d"
  "CMakeFiles/spburst_sim.dir/system.cc.o"
  "CMakeFiles/spburst_sim.dir/system.cc.o.d"
  "libspburst_sim.a"
  "libspburst_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spburst_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
