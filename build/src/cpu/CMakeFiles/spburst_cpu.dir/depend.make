# Empty dependencies file for spburst_cpu.
# This may be replaced when dependencies are built.
