file(REMOVE_RECURSE
  "CMakeFiles/spburst_cpu.dir/core.cc.o"
  "CMakeFiles/spburst_cpu.dir/core.cc.o.d"
  "CMakeFiles/spburst_cpu.dir/params.cc.o"
  "CMakeFiles/spburst_cpu.dir/params.cc.o.d"
  "CMakeFiles/spburst_cpu.dir/smt_core.cc.o"
  "CMakeFiles/spburst_cpu.dir/smt_core.cc.o.d"
  "CMakeFiles/spburst_cpu.dir/store_buffer.cc.o"
  "CMakeFiles/spburst_cpu.dir/store_buffer.cc.o.d"
  "CMakeFiles/spburst_cpu.dir/tlb.cc.o"
  "CMakeFiles/spburst_cpu.dir/tlb.cc.o.d"
  "libspburst_cpu.a"
  "libspburst_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spburst_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
