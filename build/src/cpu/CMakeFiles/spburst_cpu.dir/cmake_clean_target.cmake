file(REMOVE_RECURSE
  "libspburst_cpu.a"
)
