
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/core.cc" "src/cpu/CMakeFiles/spburst_cpu.dir/core.cc.o" "gcc" "src/cpu/CMakeFiles/spburst_cpu.dir/core.cc.o.d"
  "/root/repo/src/cpu/params.cc" "src/cpu/CMakeFiles/spburst_cpu.dir/params.cc.o" "gcc" "src/cpu/CMakeFiles/spburst_cpu.dir/params.cc.o.d"
  "/root/repo/src/cpu/smt_core.cc" "src/cpu/CMakeFiles/spburst_cpu.dir/smt_core.cc.o" "gcc" "src/cpu/CMakeFiles/spburst_cpu.dir/smt_core.cc.o.d"
  "/root/repo/src/cpu/store_buffer.cc" "src/cpu/CMakeFiles/spburst_cpu.dir/store_buffer.cc.o" "gcc" "src/cpu/CMakeFiles/spburst_cpu.dir/store_buffer.cc.o.d"
  "/root/repo/src/cpu/tlb.cc" "src/cpu/CMakeFiles/spburst_cpu.dir/tlb.cc.o" "gcc" "src/cpu/CMakeFiles/spburst_cpu.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/spburst_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spburst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/spburst_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spburst_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
