file(REMOVE_RECURSE
  "libspburst_mem.a"
)
