
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/spburst_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/spburst_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/cache_controller.cc" "src/mem/CMakeFiles/spburst_mem.dir/cache_controller.cc.o" "gcc" "src/mem/CMakeFiles/spburst_mem.dir/cache_controller.cc.o.d"
  "/root/repo/src/mem/directory.cc" "src/mem/CMakeFiles/spburst_mem.dir/directory.cc.o" "gcc" "src/mem/CMakeFiles/spburst_mem.dir/directory.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/spburst_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/spburst_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/interconnect.cc" "src/mem/CMakeFiles/spburst_mem.dir/interconnect.cc.o" "gcc" "src/mem/CMakeFiles/spburst_mem.dir/interconnect.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/mem/CMakeFiles/spburst_mem.dir/memory_system.cc.o" "gcc" "src/mem/CMakeFiles/spburst_mem.dir/memory_system.cc.o.d"
  "/root/repo/src/mem/mshr.cc" "src/mem/CMakeFiles/spburst_mem.dir/mshr.cc.o" "gcc" "src/mem/CMakeFiles/spburst_mem.dir/mshr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spburst_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/spburst_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
