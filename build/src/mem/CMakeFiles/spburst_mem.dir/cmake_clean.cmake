file(REMOVE_RECURSE
  "CMakeFiles/spburst_mem.dir/cache.cc.o"
  "CMakeFiles/spburst_mem.dir/cache.cc.o.d"
  "CMakeFiles/spburst_mem.dir/cache_controller.cc.o"
  "CMakeFiles/spburst_mem.dir/cache_controller.cc.o.d"
  "CMakeFiles/spburst_mem.dir/directory.cc.o"
  "CMakeFiles/spburst_mem.dir/directory.cc.o.d"
  "CMakeFiles/spburst_mem.dir/dram.cc.o"
  "CMakeFiles/spburst_mem.dir/dram.cc.o.d"
  "CMakeFiles/spburst_mem.dir/interconnect.cc.o"
  "CMakeFiles/spburst_mem.dir/interconnect.cc.o.d"
  "CMakeFiles/spburst_mem.dir/memory_system.cc.o"
  "CMakeFiles/spburst_mem.dir/memory_system.cc.o.d"
  "CMakeFiles/spburst_mem.dir/mshr.cc.o"
  "CMakeFiles/spburst_mem.dir/mshr.cc.o.d"
  "libspburst_mem.a"
  "libspburst_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spburst_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
