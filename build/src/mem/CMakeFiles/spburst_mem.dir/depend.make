# Empty dependencies file for spburst_mem.
# This may be replaced when dependencies are built.
