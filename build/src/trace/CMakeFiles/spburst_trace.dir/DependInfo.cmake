
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/program.cc" "src/trace/CMakeFiles/spburst_trace.dir/program.cc.o" "gcc" "src/trace/CMakeFiles/spburst_trace.dir/program.cc.o.d"
  "/root/repo/src/trace/segments.cc" "src/trace/CMakeFiles/spburst_trace.dir/segments.cc.o" "gcc" "src/trace/CMakeFiles/spburst_trace.dir/segments.cc.o.d"
  "/root/repo/src/trace/source.cc" "src/trace/CMakeFiles/spburst_trace.dir/source.cc.o" "gcc" "src/trace/CMakeFiles/spburst_trace.dir/source.cc.o.d"
  "/root/repo/src/trace/uop.cc" "src/trace/CMakeFiles/spburst_trace.dir/uop.cc.o" "gcc" "src/trace/CMakeFiles/spburst_trace.dir/uop.cc.o.d"
  "/root/repo/src/trace/workloads.cc" "src/trace/CMakeFiles/spburst_trace.dir/workloads.cc.o" "gcc" "src/trace/CMakeFiles/spburst_trace.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spburst_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
