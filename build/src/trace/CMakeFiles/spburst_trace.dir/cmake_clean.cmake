file(REMOVE_RECURSE
  "CMakeFiles/spburst_trace.dir/program.cc.o"
  "CMakeFiles/spburst_trace.dir/program.cc.o.d"
  "CMakeFiles/spburst_trace.dir/segments.cc.o"
  "CMakeFiles/spburst_trace.dir/segments.cc.o.d"
  "CMakeFiles/spburst_trace.dir/source.cc.o"
  "CMakeFiles/spburst_trace.dir/source.cc.o.d"
  "CMakeFiles/spburst_trace.dir/uop.cc.o"
  "CMakeFiles/spburst_trace.dir/uop.cc.o.d"
  "CMakeFiles/spburst_trace.dir/workloads.cc.o"
  "CMakeFiles/spburst_trace.dir/workloads.cc.o.d"
  "libspburst_trace.a"
  "libspburst_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spburst_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
