file(REMOVE_RECURSE
  "libspburst_trace.a"
)
