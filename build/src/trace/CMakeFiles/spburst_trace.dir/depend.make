# Empty dependencies file for spburst_trace.
# This may be replaced when dependencies are built.
