file(REMOVE_RECURSE
  "CMakeFiles/spburst_common.dir/logging.cc.o"
  "CMakeFiles/spburst_common.dir/logging.cc.o.d"
  "CMakeFiles/spburst_common.dir/rng.cc.o"
  "CMakeFiles/spburst_common.dir/rng.cc.o.d"
  "CMakeFiles/spburst_common.dir/stats.cc.o"
  "CMakeFiles/spburst_common.dir/stats.cc.o.d"
  "CMakeFiles/spburst_common.dir/table.cc.o"
  "CMakeFiles/spburst_common.dir/table.cc.o.d"
  "libspburst_common.a"
  "libspburst_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spburst_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
