# Empty dependencies file for spburst_common.
# This may be replaced when dependencies are built.
