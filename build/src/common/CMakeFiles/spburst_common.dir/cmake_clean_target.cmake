file(REMOVE_RECURSE
  "libspburst_common.a"
)
