file(REMOVE_RECURSE
  "libspburst_core.a"
)
