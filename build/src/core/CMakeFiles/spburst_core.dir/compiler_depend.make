# Empty compiler generated dependencies file for spburst_core.
# This may be replaced when dependencies are built.
