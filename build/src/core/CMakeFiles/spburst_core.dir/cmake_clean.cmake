file(REMOVE_RECURSE
  "CMakeFiles/spburst_core.dir/spb.cc.o"
  "CMakeFiles/spburst_core.dir/spb.cc.o.d"
  "libspburst_core.a"
  "libspburst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spburst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
