file(REMOVE_RECURSE
  "libspburst_prefetch.a"
)
