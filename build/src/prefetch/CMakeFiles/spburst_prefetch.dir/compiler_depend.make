# Empty compiler generated dependencies file for spburst_prefetch.
# This may be replaced when dependencies are built.
