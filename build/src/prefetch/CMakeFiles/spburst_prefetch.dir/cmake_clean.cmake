file(REMOVE_RECURSE
  "CMakeFiles/spburst_prefetch.dir/best_offset.cc.o"
  "CMakeFiles/spburst_prefetch.dir/best_offset.cc.o.d"
  "CMakeFiles/spburst_prefetch.dir/stream_prefetcher.cc.o"
  "CMakeFiles/spburst_prefetch.dir/stream_prefetcher.cc.o.d"
  "libspburst_prefetch.a"
  "libspburst_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spburst_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
