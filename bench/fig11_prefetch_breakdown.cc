/**
 * @file
 * Fig. 11 — Breakdown of store-prefetch outcomes at the L1D
 * (successful / late / early / never-used, plus discarded "PopReq"
 * requests) comparing the at-commit baseline against SPB at each SB
 * size.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv);
    printHeader("Figure 11",
                "Store-prefetch outcome breakdown at the L1D",
                options);
    Runner runner(options);
    runner.prewarmGrid(suiteAll(), kSbSizes, {kAtCommit, kSpb}, false);

    struct Outcomes
    {
        double successful = 0, late = 0, early = 0, never = 0,
               discarded = 0;
    };
    auto collect = [&](const std::vector<std::string> &workloads,
                       unsigned sb, const Strategy &s) {
        Outcomes o;
        for (const auto &w : workloads) {
            const auto &l1 = runner.run(w, sb, s).l1d[0];
            o.successful += static_cast<double>(l1.pfSuccessful);
            o.late += static_cast<double>(l1.pfLate);
            o.early += static_cast<double>(l1.pfEarly);
            o.never += static_cast<double>(l1.pfNeverUsed);
            o.discarded += static_cast<double>(l1.pfDiscarded);
        }
        return o;
    };

    for (const char *group : {"ALL", "SB-BOUND"}) {
        const auto workloads = std::string(group) == "ALL"
                                   ? suiteAll()
                                   : suiteSbBound();
        TextTable table(
            std::string("store-prefetch outcomes (percent of "
                        "classified prefetches), ") +
                group,
            {"SB size", "strategy", "successful", "late", "early",
             "never-used", "discarded/issued"});
        for (unsigned sb : kSbSizes) {
            for (const Strategy &s : {kAtCommit, kSpb}) {
                const Outcomes o = collect(workloads, sb, s);
                const double classified =
                    o.successful + o.late + o.early + o.never;
                auto pct = [&](double v) {
                    return formatPercent(ratio(v, classified));
                };
                table.addRow({std::string("SB") + std::to_string(sb),
                              s.label, pct(o.successful), pct(o.late),
                              pct(o.early), pct(o.never),
                              formatDouble(ratio(o.discarded,
                                                 classified),
                                           2)});
            }
            table.addSeparator();
        }
        table.print();
        std::puts("");
    }

    std::printf("Paper shape: at-commit success 5-10%% (late dominates);"
                " SPB success 30%% (ALL) to 45-50%% (SB-bound), early"
                " prefetches up ~2.5%%.\n");
    return 0;
}
