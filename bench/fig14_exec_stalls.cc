/**
 * @file
 * Fig. 14 — Execution stalls with L1D misses pending (the Top-Down
 * memory-boundedness metric), normalised to at-commit, for SPB and the
 * ideal SB at each SB size.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv);
    printHeader("Figure 14",
                "Execution stalls with L1D misses pending, normalised "
                "to at-commit (lower is better)",
                options);
    Runner runner(options);
    runner.prewarmGrid(suiteAll(), kSbSizes, {kAtCommit, kSpb, kIdeal},
                       false);

    auto norm = [&](const std::vector<std::string> &workloads, unsigned sb,
                    const Strategy &s) {
        double val = 0.0, base = 0.0;
        for (const auto &w : workloads) {
            base += static_cast<double>(
                runner.run(w, sb, kAtCommit).execStallsL1d());
            val += static_cast<double>(
                runner.run(w, sb, s).execStallsL1d());
        }
        return val / base;
    };

    TextTable table("normalised exec stalls with L1D misses pending",
                    {"SB size", "strategy", "ALL", "SB-BOUND"});
    for (unsigned sb : kSbSizes) {
        for (const Strategy &s : {kSpb, kIdeal}) {
            table.addRow({std::string("SB") + std::to_string(sb), s.label,
                          formatDouble(norm(suiteAll(), sb, s), 3),
                          formatDouble(norm(suiteSbBound(), sb, s), 3)});
        }
        table.addSeparator();
    }
    table.print();

    std::printf("\nPaper values for SPB: -27.2%% (ALL) / -52.8%%"
                " (SB-bound) at SB14; -12.2%% / -30.4%% at SB28;"
                " -3.9%% / -12.6%% at SB56.\n");
    return 0;
}
