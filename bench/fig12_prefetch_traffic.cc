/**
 * @file
 * Fig. 12 — Prefetch traffic normalised to at-commit: requests from
 * the CPU/SB to the L1 controller (REQ: tag checks) and the subset
 * that missed and went to the L2 (MISS).
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv);
    printHeader("Figure 12",
                "Prefetch traffic normalised to at-commit",
                options);
    Runner runner(options);
    runner.prewarmGrid(suiteAll(), kSbSizes, {kAtCommit, kSpb}, false);

    auto norm = [&](const std::vector<std::string> &workloads, unsigned sb,
                    auto field) {
        double val = 0.0, base = 0.0;
        for (const auto &w : workloads) {
            base += static_cast<double>(
                field(runner.run(w, sb, kAtCommit).l1d[0]));
            val += static_cast<double>(
                field(runner.run(w, sb, kSpb).l1d[0]));
        }
        return val / base;
    };
    auto req = [](const CacheStats &s) { return s.tagAccessesPrefetch; };
    auto miss = [](const CacheStats &s) { return s.pfIssued; };

    TextTable table("SPB prefetch traffic / at-commit prefetch traffic",
                    {"SB size", "group", "REQ (to L1 tags)",
                     "MISS (to L2)"});
    for (unsigned sb : kSbSizes) {
        for (const char *group : {"ALL", "SB-BOUND"}) {
            const auto workloads = std::string(group) == "ALL"
                                       ? suiteAll()
                                       : suiteSbBound();
            table.addRow({std::string("SB") + std::to_string(sb), group,
                          formatDouble(norm(workloads, sb, req), 3),
                          formatDouble(norm(workloads, sb, miss), 3)});
        }
        table.addSeparator();
    }
    table.print();

    std::printf("\nPaper shape: SPB adds prefetch REQ traffic (more for"
                " SB-bound apps) but the extra MISS traffic stays"
                " moderate because burst lines are actually written.\n");
    return 0;
}
