/**
 * @file
 * SB-size sweep (Sec. VI-A) — performance normalised to ideal as the
 * SB shrinks from 72 to 8 entries, for at-commit and SPB. Demonstrates
 * the paper's energy-efficiency headline: a ~20-entry SB with SPB
 * matches a standard 56-entry SB with at-commit prefetching.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv, 60'000);
    printHeader("SB-size sweep (Sec. VI-A)",
                "Normalised performance vs SB size: the 20-entry-SB "
                "claim",
                options);
    Runner runner(options);

    const std::vector<unsigned> sizes{8, 14, 20, 28, 40, 56, 72};
    runner.prewarmGrid(suiteAll(), sizes, {kAtCommit, kSpb});
    auto norm = [&](const std::vector<std::string> &suite, unsigned sb,
                    const Strategy &s) {
        return geomeanOver(suite, [&](const std::string &w) {
            const double ideal =
                static_cast<double>(runner.run(w, 56, kIdeal).cycles);
            return ideal /
                   static_cast<double>(runner.run(w, sb, s).cycles);
        });
    };

    for (const char *group : {"ALL", "SB-BOUND"}) {
        const auto suite = std::string(group) == "ALL" ? suiteAll()
                                                       : suiteSbBound();
        TextTable table(std::string("normalised performance, ") + group,
                        {"SB entries", "at-commit", "SPB"});
        for (unsigned sb : sizes) {
            table.addRow(std::to_string(sb),
                         {norm(suite, sb, kAtCommit),
                          norm(suite, sb, kSpb)},
                         3);
        }
        table.print();
        std::puts("");
    }

    Runner &r = runner;
    const double ac56 = norm(suiteAll(), 56, kAtCommit);
    const double spb20 = norm(suiteAll(), 20, kSpb);
    (void)r;
    std::printf("Headline check: at-commit@SB56 = %.3f vs SPB@SB20 ="
                " %.3f -> SPB with a 20-entry SB %s the standard"
                " 56-entry baseline (paper: matches it).\n",
                ac56, spb20,
                spb20 >= ac56 - 0.005 ? "matches/beats" : "trails");
    return 0;
}
