/**
 * @file
 * Fig. 1 — Ratio of stall cycles due to a full SB (at-commit baseline)
 * as the SB shrinks from 56 to 14 entries. "ALL" averages the whole
 * SPEC-like suite, "SB-BOUND" only the applications with >2% SB stalls
 * at SB56 (the paper's definition).
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv);
    printHeader("Figure 1",
                "SB-induced stall-cycle ratio, at-commit baseline",
                options);
    Runner runner(options);
    runner.prewarmGrid(suiteAll(), {56u, 28u, 14u}, {kAtCommit}, false);

    TextTable table("SB-induced stall ratio (fraction of cycles)",
                    {"workload", "SB56", "SB28", "SB14"});
    auto stall_ratio = [&](const std::string &w, unsigned sb) {
        return runner.run(w, sb, kAtCommit).sbStallRatio();
    };

    for (const auto &w : suiteSbBound()) {
        table.addRow({w, formatPercent(stall_ratio(w, 56)),
                      formatPercent(stall_ratio(w, 28)),
                      formatPercent(stall_ratio(w, 14))});
    }
    table.addSeparator();
    for (const char *group : {"ALL", "SB-BOUND"}) {
        const auto workloads = std::string(group) == "ALL"
                                   ? suiteAll()
                                   : suiteSbBound();
        std::vector<std::string> cells{group};
        for (unsigned sb : {56u, 28u, 14u}) {
            double sum = 0.0;
            for (const auto &w : workloads)
                sum += stall_ratio(w, sb);
            cells.push_back(
                formatPercent(sum / static_cast<double>(workloads.size())));
        }
        table.addRow(cells);
    }
    table.print();

    std::printf("\nPaper shape: SB-bound apps exceed 2%% at SB56 and the"
                " ratio grows steeply toward SB14.\n");
    return 0;
}
