/**
 * @file
 * Table I — prints the simulated system configuration so runs are
 * self-documenting (chip, core, cache and memory parameters).
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "cpu/params.hh"
#include "mem/memory_system.hh"

using namespace spburst;

int
main()
{
    const CoreParams core = skylakeParams();
    const MemSystemParams mem = MemSystemParams::tableI(1);

    TextTable table("Table I: configuration parameters",
                    {"parameter", "value"});
    auto row = [&](const std::string &k, const std::string &v) {
        table.addRow({k, v});
    };
    row("cores", "1 and 8 out-of-order cores, 2.0 GHz");
    row("fetch/dispatch/issue/commit width",
        std::to_string(core.fetchWidth));
    row("fetch buffer", std::to_string(core.fetchBufferUops) + " uops");
    row("load queue", std::to_string(core.lqSize) + " entries");
    row("store queue / SB", std::to_string(core.sqSize) + " entries");
    row("physical registers",
        std::to_string(core.intRegs) + " int + " +
            std::to_string(core.fpRegs) + " fp");
    row("issue queue", std::to_string(core.iqSize) + " entries");
    row("reorder buffer", std::to_string(core.robSize) + " entries");
    row("functional units", "1 Int ALU + 3 Int/FP/SIMD ALU, 2 mem ports");
    row("int latencies", "add 1c, mul 4c, div 22c");
    row("fp latencies", "add 5c, mul 5c, div 22c");
    row("L1 data cache",
        std::to_string(mem.l1d.geometry.sizeBytes / 1024) + "KB, " +
            std::to_string(mem.l1d.geometry.ways) + "-way, latency " +
            std::to_string(mem.l1d.hitLatency) + "c");
    row("L1 prefetcher", "stream (stride); aggressive/adaptive options");
    row("L2 cache",
        std::to_string(mem.l2.geometry.sizeBytes >> 20) + "MB, " +
            std::to_string(mem.l2.geometry.ways) + "-way, latency " +
            std::to_string(mem.l2.hitLatency) + "c");
    row("L3 cache",
        std::to_string(mem.l3.geometry.sizeBytes >> 20) + "MB, " +
            std::to_string(mem.l3.geometry.ways) + "-way, latency " +
            std::to_string(mem.l3.hitLatency) + "c");
    row("MSHR entries", std::to_string(mem.l1d.mshrs) + " per cache");
    row("DRAM",
        std::to_string(mem.dram.latency) + "c latency, " +
            std::to_string(mem.dram.channels) + " channels, " +
            std::to_string(mem.dram.blockOccupancy) +
            "c occupancy per block");
    row("SPB storage", "58b last-block + 4b sat counter + store count");
    table.print();
    return 0;
}
