/**
 * @file
 * Fig. 16 — SPB on top of aggressive cache prefetchers: execution time
 * normalised to "ideal SB + the same prefetcher", for the stream,
 * aggressive and adaptive (feedback-directed) L1 prefetchers, with
 * at-commit and SPB. Shows SPB is orthogonal to cache-prefetcher
 * aggressiveness.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

namespace
{

SystemConfig
cfgWith(const BenchOptions &options, const std::string &workload,
        L1PrefetcherKind kind, const Strategy &s, unsigned sb)
{
    SystemConfig cfg = makeConfig(workload, sb, s.policy, s.spb, s.ideal);
    cfg.l1Prefetcher = kind;
    cfg.maxUopsPerCore = options.uops;
    cfg.seed = options.seed;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv);
    printHeader("Figure 16",
                "Execution time normalised to ideal SB with the same L1 "
                "prefetcher (lower is better; SB56)",
                options);
    Runner runner(options);
    {
        std::vector<SystemConfig> grid;
        for (const auto kind :
             {L1PrefetcherKind::Stream, L1PrefetcherKind::Aggressive,
              L1PrefetcherKind::Adaptive}) {
            for (const auto &w : suiteSbBound())
                for (const Strategy &s : {kIdeal, kAtCommit, kSpb})
                    grid.push_back(cfgWith(options, w, kind, s, 56));
        }
        runner.prewarm(grid);
    }
    constexpr unsigned kSb = 56;

    const std::vector<std::pair<const char *, L1PrefetcherKind>> kinds{
        {"stream", L1PrefetcherKind::Stream},
        {"aggressive", L1PrefetcherKind::Aggressive},
        {"adaptive", L1PrefetcherKind::Adaptive},
    };

    TextTable table("normalised execution time (SB-bound workloads)",
                    {"workload", "stream/ac", "stream/SPB", "aggr/ac",
                     "aggr/SPB", "adapt/ac", "adapt/SPB"});
    auto norm = [&](const std::string &w, L1PrefetcherKind kind,
                    const Strategy &s) {
        const double ideal = static_cast<double>(
            runner.run(cfgWith(options, w, kind, kIdeal, kSb)).cycles);
        return static_cast<double>(
                   runner.run(cfgWith(options, w, kind, s, kSb)).cycles) /
               ideal;
    };

    for (const auto &w : suiteSbBound()) {
        std::vector<double> row;
        for (const auto &[label, kind] : kinds) {
            (void)label;
            row.push_back(norm(w, kind, kAtCommit));
            row.push_back(norm(w, kind, kSpb));
        }
        table.addRow(w, row, 3);
    }
    table.addSeparator();
    std::vector<double> geo;
    for (const auto &[label, kind] : kinds) {
        (void)label;
        for (const Strategy &s : {kAtCommit, kSpb}) {
            geo.push_back(geomeanOver(
                suiteSbBound(), [&](const std::string &w) {
                    return norm(w, kind, s);
                }));
        }
    }
    table.addRow("GEOMEAN", geo, 3);
    table.print();

    std::printf("\nPaper shape: the aggressive/adaptive prefetchers do"
                " not remove SB-induced stalls (their requests are"
                " still bounded by the SB's scope); SPB closes the gap"
                " under every prefetcher.\n");
    return 0;
}
