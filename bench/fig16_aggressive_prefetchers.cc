/**
 * @file
 * Fig. 16 — SPB orthogonality to cache prefetching: the full grid of
 * five cache-prefetcher configurations {none, stride, FDP, BOP,
 * DSPatch} crossed with the five store-prefetch strategies {none,
 * at-execute, at-commit, SPB, ideal}, execution time normalised to
 * "ideal SB + the same prefetcher". A second table reports each
 * prefetcher's unified quality stats (accuracy / coverage / pollution)
 * with and without SPB, showing SPB neither needs nor disturbs the
 * cache prefetcher.
 *
 * Runs over the SB-bound profile suite by default; pass --trace=PATH
 * (optionally with --sample=SPEC) to replay a real ChampSim trace
 * through the same grid instead.
 */

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

namespace
{

/** The Fig. 16 prefetcher axis; labels match the pf.<name>.* stats. */
const std::vector<std::pair<const char *, L1PrefetcherKind>> kKinds{
    {"none", L1PrefetcherKind::None},
    {"stride", L1PrefetcherKind::Stream},
    {"fdp", L1PrefetcherKind::Adaptive},
    {"bop", L1PrefetcherKind::BestOffset},
    {"dspatch", L1PrefetcherKind::DSPatch},
};

/** The full strategy axis (x-axis of the paper's figure). */
const std::vector<Strategy> kStrategies{kNone, kAtExecute, kAtCommit,
                                        kSpb, kIdeal};

SystemConfig
cfgWith(const Runner &runner, const std::string &workload,
        L1PrefetcherKind kind, const Strategy &s)
{
    SystemConfig cfg = runner.makeStandardConfig(workload, 56, s);
    cfg.l1Prefetcher = kind;
    return cfg;
}

/** Counters behind the derived pf rates, summed over workloads. */
struct QualityAccum
{
    double issued = 0, useful = 0, misses = 0, pollution = 0;

    void
    addFrom(const SimResult &r, const std::string &name)
    {
        issued += r.pf.get(name + ".issued");
        useful += r.pf.get(name + ".useful");
        misses += r.pf.get(name + ".demandMisses");
        pollution += r.pf.get(name + ".pollution");
    }

    double accuracy() const { return issued ? useful / issued : 0.0; }
    double coverage() const
    {
        const double base = useful + misses;
        return base ? useful / base : 0.0;
    }
    double pollutionRate() const
    {
        return issued ? pollution / issued : 0.0;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv);
    printHeader("Figure 16",
                "Execution time normalised to ideal SB with the same "
                "cache prefetcher (lower is better; SB56), for every "
                "prefetcher x store-prefetch strategy cell",
                options);
    const std::vector<std::string> workloads =
        options.trace.empty()
            ? suiteSbBound()
            : std::vector<std::string>{"trace:" + options.trace};

    Runner runner(options);
    {
        std::vector<SystemConfig> grid;
        grid.reserve(kKinds.size() * workloads.size() *
                     kStrategies.size());
        for (const auto &[label, kind] : kKinds) {
            (void)label;
            for (const auto &w : workloads)
                for (const Strategy &s : kStrategies)
                    grid.push_back(cfgWith(runner, w, kind, s));
        }
        runner.prewarm(grid);
    }

    auto norm = [&](const std::string &w, L1PrefetcherKind kind,
                    const Strategy &s) {
        const double ideal = static_cast<double>(
            runner.run(cfgWith(runner, w, kind, kIdeal)).cycles);
        return static_cast<double>(
                   runner.run(cfgWith(runner, w, kind, s)).cycles) /
               ideal;
    };

    for (const auto &[label, kind] : kKinds) {
        TextTable table(std::string("normalised execution time — ") +
                            label + " prefetcher",
                        {"workload", "none", "at-execute", "at-commit",
                         "SPB"});
        for (const auto &w : workloads) {
            std::vector<double> row;
            for (const Strategy &s : {kNone, kAtExecute, kAtCommit, kSpb})
                row.push_back(norm(w, kind, s));
            table.addRow(w, row, 3);
        }
        if (workloads.size() > 1) {
            table.addSeparator();
            std::vector<double> geo;
            for (const Strategy &s : {kNone, kAtExecute, kAtCommit, kSpb})
                geo.push_back(
                    geomeanOver(workloads, [&](const std::string &w) {
                        return norm(w, kind, s);
                    }));
            table.addRow("GEOMEAN", geo, 3);
        }
        table.print();
    }

    // Prefetcher quality from the unified pf.<name>.* stats, summed
    // over the workloads: identical metrics for every prefetcher, with
    // and without SPB running underneath.
    TextTable quality("cache-prefetcher quality (at-commit vs +SPB)",
                      {"prefetcher", "accuracy", "coverage", "pollution",
                       "accuracy+SPB", "coverage+SPB", "pollution+SPB"});
    for (const auto &[label, kind] : kKinds) {
        if (kind == L1PrefetcherKind::None)
            continue;
        std::vector<double> row;
        for (const Strategy &s : {kAtCommit, kSpb}) {
            QualityAccum acc;
            for (const auto &w : workloads)
                acc.addFrom(runner.run(cfgWith(runner, w, kind, s)),
                            label);
            row.push_back(acc.accuracy());
            row.push_back(acc.coverage());
            row.push_back(acc.pollutionRate());
        }
        quality.addRow(label, row, 3);
    }
    quality.print();

    std::printf("\nPaper shape: no cache prefetcher removes SB-induced"
                " stalls (their requests stay bounded by the SB's"
                " scope); SPB closes the gap to the ideal SB under"
                " every prefetcher, and leaves the prefetcher's own"
                " accuracy/coverage essentially untouched.\n");
    return 0;
}
