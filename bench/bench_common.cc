#include "bench/bench_common.hh"

#include <cstdio>
#include <cstring>
#include <set>

#include "check/check.hh"
#include "common/logging.hh"
#include "exp/spec.hh"
#include "trace/workloads.hh"

namespace spburst::bench
{

BenchOptions
BenchOptions::parse(int argc, char **argv, std::uint64_t default_uops)
{
    BenchOptions o;
    o.uops = default_uops;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--uops=", 7) == 0) {
            o.uops = std::strtoull(arg + 7, nullptr, 10);
        } else if (std::strncmp(arg, "--seed=", 7) == 0) {
            o.seed = std::strtoull(arg + 7, nullptr, 10);
        } else if (std::strncmp(arg, "--sample=", 9) == 0) {
            o.sample = sample::SampleSpec::parse(arg + 9);
        } else if (std::strncmp(arg, "--trace=", 8) == 0) {
            o.trace = arg + 8;
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            o.jobs = static_cast<unsigned>(
                std::strtoul(arg + 7, nullptr, 10));
        } else if (std::strcmp(arg, "--progress") == 0) {
            o.progress = true;
        } else if (std::strcmp(arg, "--quick") == 0) {
            o.uops = 20'000;
        } else if (std::strncmp(arg, "--check=", 8) == 0) {
            check::setLevel(check::parseLevel(arg + 8));
        } else if (std::strcmp(arg, "--help") == 0) {
            std::printf("options: --uops=N --seed=N --sample=SPEC "
                        "--trace=PATH --quick --jobs=N --progress "
                        "--check=off|fast|full\n");
            std::exit(0);
        } else {
            SPB_FATAL("unknown bench option '%s'", arg);
        }
    }
    return o;
}

std::string
configKey(const SystemConfig &cfg)
{
    return exp::configKey(cfg);
}

SystemConfig
Runner::makeStandardConfig(const std::string &workload, unsigned sb_size,
                           const Strategy &strategy) const
{
    SystemConfig cfg = makeConfig(workload, sb_size, strategy.policy,
                                  strategy.spb, strategy.ideal);
    cfg.maxUopsPerCore = options_.uops;
    cfg.seed = options_.seed;
    cfg.sample = options_.sample;
    return cfg;
}

const SimResult &
Runner::run(const std::string &workload, unsigned sb_size,
            const Strategy &strategy)
{
    return run(makeStandardConfig(workload, sb_size, strategy));
}

void
Runner::prewarm(const std::vector<SystemConfig> &configs)
{
    std::vector<exp::Job> jobs;
    jobs.reserve(configs.size());
    std::set<std::string> queued;
    for (const auto &cfg : configs) {
        std::string key = exp::configKey(cfg);
        if (cache_.count(key) || !queued.insert(key).second)
            continue;
        jobs.push_back(exp::Job{std::move(key), cfg});
    }
    if (jobs.empty())
        return;

    exp::EngineOptions engine;
    engine.hostThreads = options_.jobs;
    engine.progress = options_.progress;
    const exp::ExperimentReport report = exp::runJobs(jobs, engine);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const exp::JobOutcome &out = report.outcomes[i];
        if (out.status != exp::JobStatus::Completed)
            SPB_FATAL("prewarm job '%s' failed: %s", out.key.c_str(),
                      out.error.c_str());
        cache_.emplace(out.key, out.result);
    }
}

void
Runner::prewarmGrid(const std::vector<std::string> &workloads,
                    const std::vector<unsigned> &sb_sizes,
                    const std::vector<Strategy> &strategies,
                    bool ideal_baseline)
{
    std::vector<SystemConfig> grid;
    grid.reserve(workloads.size() *
                 (sb_sizes.size() * strategies.size() + 1));
    for (const auto &w : workloads) {
        if (ideal_baseline)
            grid.push_back(makeStandardConfig(w, 56, kIdeal));
        for (unsigned sb : sb_sizes)
            for (const Strategy &s : strategies)
                grid.push_back(makeStandardConfig(w, sb, s));
    }
    prewarm(grid);
}

const SimResult &
Runner::run(SystemConfig cfg)
{
    const std::string key = configKey(cfg);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;
    SimResult result = runSystem(cfg);
    return cache_.emplace(key, std::move(result)).first->second;
}

std::vector<std::string>
suiteAll()
{
    return allSpecNames();
}

std::vector<std::string>
suiteSbBound()
{
    return sbBoundSpecNames();
}

void
printHeader(const std::string &figure, const std::string &what,
            const BenchOptions &options)
{
    std::printf("########################################################\n");
    std::printf("# %s\n", figure.c_str());
    std::printf("# %s\n", what.c_str());
    std::printf("# %lu committed uops per core per run, seed %lu\n",
                static_cast<unsigned long>(options.uops),
                static_cast<unsigned long>(options.seed));
    std::printf("########################################################\n");
}

} // namespace spburst::bench
