#include "bench/bench_common.hh"

#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "trace/workloads.hh"

namespace spburst::bench
{

BenchOptions
BenchOptions::parse(int argc, char **argv, std::uint64_t default_uops)
{
    BenchOptions o;
    o.uops = default_uops;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--uops=", 7) == 0) {
            o.uops = std::strtoull(arg + 7, nullptr, 10);
        } else if (std::strncmp(arg, "--seed=", 7) == 0) {
            o.seed = std::strtoull(arg + 7, nullptr, 10);
        } else if (std::strcmp(arg, "--quick") == 0) {
            o.uops = 20'000;
        } else if (std::strcmp(arg, "--help") == 0) {
            std::printf("options: --uops=N --seed=N --quick\n");
            std::exit(0);
        } else {
            SPB_FATAL("unknown bench option '%s'", arg);
        }
    }
    return o;
}

std::string
configKey(const SystemConfig &cfg)
{
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "%s|sb%u|p%d|spb%d:%u:%d:%d|i%d|c%d|pf%d|t%d|s%lu|u%lu|%s|m%u:%zu",
        cfg.workload.c_str(), cfg.sbSize, static_cast<int>(cfg.policy),
        cfg.useSpb, cfg.spb.checkInterval, cfg.spb.dynamicThreshold,
        cfg.spb.backwardBursts, cfg.idealSb, cfg.coalescingSb,
        static_cast<int>(cfg.l1Prefetcher), cfg.threads,
        static_cast<unsigned long>(cfg.seed),
        static_cast<unsigned long>(cfg.maxUopsPerCore),
        cfg.coreParams.name.c_str(), cfg.mem.l1d.prefetchIssuePerCycle,
        cfg.mem.l1d.demandReservedMshrs);
    return buf;
}

const SimResult &
Runner::run(const std::string &workload, unsigned sb_size,
            const Strategy &strategy)
{
    SystemConfig cfg = makeConfig(workload, sb_size, strategy.policy,
                                  strategy.spb, strategy.ideal);
    cfg.maxUopsPerCore = options_.uops;
    cfg.seed = options_.seed;
    return run(cfg);
}

const SimResult &
Runner::run(SystemConfig cfg)
{
    const std::string key = configKey(cfg);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;
    SimResult result = runSystem(cfg);
    return cache_.emplace(key, std::move(result)).first->second;
}

std::vector<std::string>
suiteAll()
{
    return allSpecNames();
}

std::vector<std::string>
suiteSbBound()
{
    return sbBoundSpecNames();
}

void
printHeader(const std::string &figure, const std::string &what,
            const BenchOptions &options)
{
    std::printf("########################################################\n");
    std::printf("# %s\n", figure.c_str());
    std::printf("# %s\n", what.c_str());
    std::printf("# %lu committed uops per core per run, seed %lu\n",
                static_cast<unsigned long>(options.uops),
                static_cast<unsigned long>(options.seed));
    std::printf("########################################################\n");
}

} // namespace spburst::bench
