/**
 * @file
 * Fig. 7 — Energy normalised to the at-commit baseline (lower is
 * better): cache dynamic energy (L1+L2+L3), total core dynamic energy
 * and total energy (dynamic + static), for at-execute and SPB at each
 * SB size.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv);
    printHeader("Figure 7",
                "Energy normalised to at-commit (lower is better)",
                options);
    Runner runner(options);
    runner.prewarmGrid(suiteAll(), kSbSizes,
                       {kAtExecute, kAtCommit, kSpb}, false);

    auto norm_component = [&](const std::vector<std::string> &workloads,
                              unsigned sb, const Strategy &s,
                              auto component) {
        return geomeanOver(workloads, [&](const std::string &w) {
            const double base =
                component(runner.run(w, sb, kAtCommit).energy);
            const double val = component(runner.run(w, sb, s).energy);
            return val / base;
        });
    };

    auto cache_dyn = [](const EnergyBreakdown &e) {
        return e.cacheDynamicPj;
    };
    auto core_dyn = [](const EnergyBreakdown &e) {
        return e.coreDynamicPj;
    };
    auto total = [](const EnergyBreakdown &e) { return e.totalPj(); };

    for (const char *group : {"ALL", "SB-BOUND"}) {
        const auto workloads = std::string(group) == "ALL"
                                   ? suiteAll()
                                   : suiteSbBound();
        TextTable table(std::string("normalised energy, ") + group,
                        {"SB size", "strategy", "cache dynamic",
                         "core dynamic", "total"});
        for (unsigned sb : kSbSizes) {
            for (const Strategy &s : {kAtExecute, kSpb}) {
                table.addRow(
                    {std::string("SB") + std::to_string(sb), s.label,
                     formatDouble(
                         norm_component(workloads, sb, s, cache_dyn), 3),
                     formatDouble(
                         norm_component(workloads, sb, s, core_dyn), 3),
                     formatDouble(norm_component(workloads, sb, s, total),
                                  3)});
            }
            table.addSeparator();
        }
        table.print();
        std::puts("");
    }

    std::printf("Paper values: SPB net savings 6.7%% / 3.4%% / 1.5%% for"
                " SB14/28/56 (16.8%% / 9%% / 4.3%% SB-bound);"
                " at-execute saves ~1%%.\n");
    return 0;
}
