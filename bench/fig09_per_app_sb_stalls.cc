/**
 * @file
 * Fig. 9 — Per-SB-bound-application SB stalls normalised to at-commit,
 * one table per SB size.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv);
    printHeader("Figure 9",
                "Per-app SB stalls normalised to at-commit "
                "(lower is better)",
                options);
    Runner runner(options);
    runner.prewarmGrid(suiteSbBound(), {14u, 28u, 56u},
                       {kAtCommit, kAtExecute, kSpb, kIdeal}, false);

    for (unsigned sb : {14u, 28u, 56u}) {
        TextTable table(std::to_string(sb) + "-entry SB",
                        {"workload", "at-execute", "SPB", "ideal"});
        for (const auto &w : suiteSbBound()) {
            const double base = static_cast<double>(
                runner.run(w, sb, kAtCommit).sbStalls());
            std::vector<double> row;
            for (const Strategy &s : {kAtExecute, kSpb, kIdeal}) {
                const double val = static_cast<double>(
                    runner.run(w, sb, s).sbStalls());
                row.push_back(base == 0.0 ? 1.0 : val / base);
            }
            table.addRow(w, row, 3);
        }
        table.print();
        std::puts("");
    }
    std::printf("Paper shape: SPB cuts the per-app SB stalls strongly"
                " while the ideal SB removes them entirely.\n");
    return 0;
}
