/**
 * @file
 * Fig. 17 (and Table II) — Core-aggressiveness sensitivity: execution
 * time normalised to the ideal SB for the Silvermont / Nehalem /
 * Haswell / Skylake / Sunny Cove configurations, with at-commit and
 * SPB at the preset's default SQ size and at half of it (the SMT-2
 * per-thread share).
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "cpu/params.hh"

using namespace spburst;
using namespace spburst::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv, 60'000);
    printHeader("Figure 17 / Table II",
                "Execution time normalised to ideal across core "
                "configurations (lower is better)",
                options);
    Runner runner(options);
    {
        std::vector<SystemConfig> grid;
        for (const CoreParams &p : tableIIPresets()) {
            auto make = [&](const Strategy &strat, unsigned sq_size,
                            const std::string &w) {
                SystemConfig cfg;
                cfg.coreParams = p;
                cfg.coreParams.name =
                    p.name + "-sq" + std::to_string(sq_size);
                cfg.coreParams.sqSize = sq_size;
                cfg.policy = strat.policy;
                cfg.useSpb = strat.spb;
                cfg.idealSb = strat.ideal;
                cfg.workload = w;
                cfg.maxUopsPerCore = options.uops;
                cfg.seed = options.seed;
                return cfg;
            };
            for (const auto &w : suiteSbBound()) {
                grid.push_back(make(kIdeal, p.sqSize, w));
                for (unsigned sq : {p.sqSize, p.sqSize / 2})
                    for (const Strategy &s : {kAtCommit, kSpb})
                        grid.push_back(make(s, sq, w));
            }
        }
        runner.prewarm(grid);
    }

    // Table II itself.
    TextTable tab2("Table II: configurations",
                   {"name", "ROB", "IQ", "LQ", "SQ", "width"});
    for (const CoreParams &p : tableIIPresets()) {
        tab2.addRow({p.name, std::to_string(p.robSize),
                     std::to_string(p.iqSize), std::to_string(p.lqSize),
                     std::to_string(p.sqSize),
                     std::to_string(p.issueWidth)});
    }
    tab2.print();
    std::puts("");

    TextTable table("geomean normalised execution time, SB-bound suite",
                    {"config", "at-commit", "SPB", "at-commit SQ/2",
                     "SPB SQ/2"});
    for (const CoreParams &p : tableIIPresets()) {
        auto norm = [&](unsigned sq, const Strategy &s) {
            return geomeanOver(suiteSbBound(), [&](const std::string &w) {
                auto make = [&](const Strategy &strat,
                                unsigned sq_size) {
                    SystemConfig cfg;
                    cfg.coreParams = p;
                    cfg.coreParams.name =
                        p.name + "-sq" + std::to_string(sq_size);
                    cfg.coreParams.sqSize = sq_size;
                    cfg.policy = strat.policy;
                    cfg.useSpb = strat.spb;
                    cfg.idealSb = strat.ideal;
                    cfg.workload = w;
                    cfg.maxUopsPerCore = options.uops;
                    cfg.seed = options.seed;
                    return cfg;
                };
                const double ideal = static_cast<double>(
                    runner.run(make(kIdeal, p.sqSize)).cycles);
                return static_cast<double>(
                           runner.run(make(s, sq)).cycles) /
                       ideal;
            });
        };
        table.addRow(p.name,
                     {norm(p.sqSize, kAtCommit), norm(p.sqSize, kSpb),
                      norm(p.sqSize / 2, kAtCommit),
                      norm(p.sqSize / 2, kSpb)},
                     3);
    }
    table.print();

    std::printf("\nPaper shape: the at-commit gap to ideal grows toward"
                " energy-efficient cores; SPB stays near 1.0 at default"
                " SQ and >= 0.89 of ideal at half SQ, while at-commit"
                " falls to ~0.67 in the worst case.\n");
    return 0;
}
