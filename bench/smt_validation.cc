/**
 * @file
 * SMT validation (paper Sec. I) — the paper models SMT by shrinking a
 * single-threaded core's SB to SB/T. This bench runs *real* SMT-1/2/4
 * (threads sharing one pipeline and one L1D, with the SB statically
 * partitioned) and checks that the modelling shortcut is sound: the
 * per-thread SB-stall pressure and SPB's relative benefit on real SMT
 * track the partitioned single-thread runs.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "cpu/smt_core.hh"
#include "mem/memory_system.hh"
#include "trace/workloads.hh"

using namespace spburst;
using namespace spburst::bench;

namespace
{

struct SmtResult
{
    Cycle cycles = 0;
    double sbStallRatio = 0.0;     //!< mean per-thread
    std::uint64_t throughput = 0;  //!< total committed uops
};

SmtResult
runSmt(const std::string &workload, int threads, bool spb,
       std::uint64_t uops_per_thread)
{
    SimClock clock;
    MemorySystem mem(MemSystemParams::tableI(1), &clock);
    std::vector<std::unique_ptr<TraceSource>> traces;
    std::vector<TraceSource *> ptrs;
    for (int t = 0; t < threads; ++t) {
        traces.push_back(
            buildWorkload(findProfile(workload), 1 + t, 0, 1));
        ptrs.push_back(traces.back().get());
    }
    CoreConfig cfg;
    cfg.useSpb = spb;
    SmtCore smt(cfg, threads, &clock, &mem.l1d(0), ptrs);
    while (smt.minCommitted() < uops_per_thread) {
        clock.tick();
        smt.tick();
    }
    SmtResult r;
    r.cycles = clock.now;
    for (int t = 0; t < threads; ++t) {
        r.sbStallRatio += static_cast<double>(smt.stats(t).sbStalls()) /
                          static_cast<double>(clock.now);
        r.throughput += smt.stats(t).committedUops;
    }
    r.sbStallRatio /= threads;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv, 30'000);
    printHeader("SMT validation (Sec. I)",
                "real SMT-1/2/4 vs the paper's shrink-the-SB model",
                options);
    Runner runner(options);
    {
        std::vector<SystemConfig> grid;
        for (const char *w : {"bwaves", "x264"}) {
            for (unsigned sb_model : {56u, 28u, 14u}) {
                SystemConfig mac = makeConfig(
                    w, sb_model, StorePrefetchPolicy::AtCommit, false);
                mac.maxUopsPerCore = options.uops;
                mac.seed = options.seed;
                grid.push_back(mac);
                SystemConfig mspb = mac;
                mspb.useSpb = true;
                grid.push_back(mspb);
            }
        }
        runner.prewarm(grid);
    }

    for (const char *w : {"bwaves", "x264"}) {
        TextTable table(std::string(w) +
                            ": real SMT (shared pipeline, partitioned "
                            "SB) vs single-thread SB/T model",
                        {"config", "SMT cycles", "SMT SB-stall%",
                         "SPB speedup (SMT)", "SPB speedup (SB/T model)"});
        const std::vector<std::pair<int, unsigned>> levels{
            {1, 56}, {2, 28}, {4, 14}};
        for (const auto &[threads, sb_model] : levels) {
            // Per-thread uop budget shrinks with threads so wall time
            // stays manageable; ratios are what matter.
            const std::uint64_t per_thread =
                options.uops / static_cast<std::uint64_t>(threads);
            const SmtResult ac = runSmt(w, threads, false, per_thread);
            const SmtResult spb = runSmt(w, threads, true, per_thread);

            // The paper's model: one thread, SB shrunk to SB/T.
            SystemConfig mac = makeConfig(
                w, sb_model, StorePrefetchPolicy::AtCommit, false);
            mac.maxUopsPerCore = options.uops;
            mac.seed = options.seed;
            SystemConfig mspb = mac;
            mspb.useSpb = true;
            const double model_speedup =
                static_cast<double>(runner.run(mac).cycles) /
                static_cast<double>(runner.run(mspb).cycles);

            table.addRow(
                {"SMT-" + std::to_string(threads) + " (SB/T=" +
                     std::to_string(sb_model) + ")",
                 std::to_string(ac.cycles),
                 formatPercent(ac.sbStallRatio),
                 formatDouble(static_cast<double>(ac.cycles) /
                                  static_cast<double>(spb.cycles),
                              3),
                 formatDouble(model_speedup, 3)});
        }
        table.print();
        std::puts("");
    }

    std::printf("Reading: SPB's speedup on real SMT grows with the\n"
                "thread count just as it does in the paper's shrunken-\n"
                "SB model — the modelling shortcut the paper uses is\n"
                "sound, and SPB is what makes small per-thread SBs\n"
                "viable for SMT designs.\n");
    return 0;
}
