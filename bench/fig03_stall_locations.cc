/**
 * @file
 * Fig. 3 — Location (code region) of the stores blocking the SB when
 * dispatch stalls: libc (memcpy/memset/calloc), the OS (clear_page) or
 * the application itself, per SB-bound workload.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "trace/uop.hh"

using namespace spburst;
using namespace spburst::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv);
    printHeader("Figure 3",
                "Code regions causing SB-induced stalls (SB56, at-commit)",
                options);
    Runner runner(options);
    runner.prewarmGrid(suiteSbBound(), {56u}, {kAtCommit}, false);

    std::vector<std::string> headers{"workload"};
    for (int r = 0; r < kNumRegions; ++r)
        headers.push_back(regionName(static_cast<Region>(r)));
    TextTable table("share of SB-stall cycles by blocking store's region",
                    headers);

    for (const auto &w : suiteSbBound()) {
        const SimResult &res = runner.run(w, 56, kAtCommit);
        const auto &stalls = res.cores[0].sbStallsByRegion;
        double total = 0.0;
        for (int r = 0; r < kNumRegions; ++r)
            total += static_cast<double>(stalls[r]);
        std::vector<std::string> cells{w};
        for (int r = 0; r < kNumRegions; ++r) {
            cells.push_back(formatPercent(
                ratio(static_cast<double>(stalls[r]), total)));
        }
        table.addRow(cells);
    }
    table.print();

    std::printf("\nPaper shape: x264/blender/cam4 stall in library/OS"
                " copy-zero code; deepsjeng and roms stall on their own"
                " application stores.\n");
    return 0;
}
