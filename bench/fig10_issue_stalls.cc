/**
 * @file
 * Fig. 10 — Total issue (dispatch) stalls normalised to at-commit,
 * broken down into stalls caused by the SB versus all other resources
 * (ROB/IQ/LQ/registers), with the resulting net stall reduction, for
 * SPB and the ideal SB at each SB size.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv);
    printHeader("Figure 10",
                "Issue-stall breakdown normalised to at-commit",
                options);
    Runner runner(options);
    runner.prewarmGrid(suiteAll(), kSbSizes, {kAtCommit, kSpb, kIdeal},
                       false);

    struct Decomp
    {
        double sb = 0.0;
        double other = 0.0;
    };
    auto decompose = [&](const std::string &w, unsigned sb,
                         const Strategy &s) {
        const SimResult &r = runner.run(w, sb, s);
        Decomp d;
        d.sb = static_cast<double>(r.sbStalls());
        d.other = static_cast<double>(r.totalIssueStalls() - r.sbStalls());
        return d;
    };

    for (const char *group : {"ALL", "SB-BOUND"}) {
        const auto workloads = std::string(group) == "ALL"
                                   ? suiteAll()
                                   : suiteSbBound();
        TextTable table(
            std::string("issue stalls vs at-commit, ") + group,
            {"SB size", "strategy", "SB share", "Other share", "total",
             "net reduction"});
        for (unsigned sb : kSbSizes) {
            for (const Strategy &s : {kSpb, kIdeal}) {
                double sb_sum = 0.0, other_sum = 0.0, base_sum = 0.0;
                for (const auto &w : workloads) {
                    const Decomp base = decompose(w, sb, kAtCommit);
                    const Decomp val = decompose(w, sb, s);
                    sb_sum += val.sb;
                    other_sum += val.other;
                    base_sum += base.sb + base.other;
                }
                const double total = (sb_sum + other_sum) / base_sum;
                table.addRow(
                    {std::string("SB") + std::to_string(sb), s.label,
                     formatDouble(sb_sum / base_sum, 3),
                     formatDouble(other_sum / base_sum, 3),
                     formatDouble(total, 3),
                     formatPercent(1.0 - total)});
            }
            table.addSeparator();
        }
        table.print();
        std::puts("");
    }

    std::printf("Paper shape (SB14, ALL): ideal removes all SB stalls"
                " but gains ~22%% other-resource stalls (net -47%%);"
                " SPB nets -35%%, and even reduces other stalls via"
                " faster load-dependent branches.\n");
    return 0;
}
