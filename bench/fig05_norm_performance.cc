/**
 * @file
 * Fig. 5 — Performance normalised to the ideal (1024-entry,
 * fully-prefetched) SB for SB sizes 56/28/14 under the three store
 * prefetch strategies. This is the paper's headline figure.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv, 100'000);
    printHeader("Figure 5",
                "Performance normalised to the ideal SB (higher is "
                "better; 1.0 == ideal)",
                options);
    Runner runner(options);
    runner.prewarmGrid(suiteAll(), kSbSizes, kRealStrategies);

    // Normalised performance = ideal cycles / strategy cycles.
    auto norm = [&](const std::string &w, unsigned sb,
                    const Strategy &s) {
        const double ideal =
            static_cast<double>(runner.run(w, 56, kIdeal).cycles);
        return ideal / static_cast<double>(runner.run(w, sb, s).cycles);
    };

    TextTable table("geomean normalised performance",
                    {"SB size", "strategy", "ALL", "SB-BOUND"});
    for (unsigned sb : kSbSizes) {
        for (const Strategy &s : kRealStrategies) {
            table.addRow(
                {std::string("SB") + std::to_string(sb), s.label,
                 formatDouble(geomeanOver(suiteAll(),
                                          [&](const std::string &w) {
                                              return norm(w, sb, s);
                                          }),
                              3),
                 formatDouble(geomeanOver(suiteSbBound(),
                                          [&](const std::string &w) {
                                              return norm(w, sb, s);
                                          }),
                              3)});
        }
        table.addSeparator();
    }
    table.print();

    std::printf(
        "\nPaper values: SB56 at-commit 0.981 / SPB 1.005;"
        " SB28 at-commit 0.936 / SPB 0.989;"
        " SB14 at-commit 0.859 (0.701 SB-bound) / SPB 0.954 (0.926).\n");
    return 0;
}
