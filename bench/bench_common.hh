/**
 * @file
 * Shared infrastructure for the figure-reproduction harnesses: command
 * line options, a memoizing simulation runner, the strategy variants
 * the paper compares, and table-building helpers.
 *
 * Every bench binary regenerates one table or figure of the paper; the
 * default instruction budgets are sized so the whole bench/ directory
 * completes in minutes on one core. Pass --uops=N to change fidelity,
 * --quick for a fast smoke run.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "exp/engine.hh"
#include "sim/system.hh"

namespace spburst::bench
{

/** Command-line options shared by every bench binary. */
struct BenchOptions
{
    std::uint64_t uops = 120'000; //!< committed uops per core per run
    std::uint64_t seed = 1;
    /** Interval-sampling spec applied to every standard config
     *  (--sample=; disabled by default — figure tables then carry the
     *  sampled estimates' detailed windows only). */
    sample::SampleSpec sample;
    /** ChampSim trace to replay instead of the synthetic profile suite
     *  (--trace=PATH; figures that honour it run on the single
     *  "trace:PATH" workload, optionally sampled via --sample=). */
    std::string trace;
    unsigned jobs = 0;            //!< host threads for prewarm (0=auto)
    bool progress = false;        //!< live progress line on stderr

    /** Parse --uops=N, --seed=N, --sample=SPEC, --trace=PATH, --quick
     *  (uops=20k), --jobs=N, --progress, --check=off|fast|full (sets
     *  the global simcheck level). Unknown flags are rejected (fatal). */
    static BenchOptions parse(int argc, char **argv,
                              std::uint64_t default_uops = 120'000);
};

/** One store-prefetch strategy variant from the paper's evaluation. */
struct Strategy
{
    const char *label;
    StorePrefetchPolicy policy;
    bool spb;
    bool ideal;
};

inline constexpr Strategy kNone{"none", StorePrefetchPolicy::None, false,
                                false};
inline constexpr Strategy kAtExecute{
    "at-execute", StorePrefetchPolicy::AtExecute, false, false};
inline constexpr Strategy kAtCommit{
    "at-commit", StorePrefetchPolicy::AtCommit, false, false};
inline constexpr Strategy kSpb{"SPB", StorePrefetchPolicy::AtCommit, true,
                               false};
inline constexpr Strategy kIdeal{"ideal", StorePrefetchPolicy::AtCommit,
                                 false, true};

/** The three real strategies (paper Fig. 5 x-axis). */
inline const std::vector<Strategy> kRealStrategies{kAtExecute, kAtCommit,
                                                   kSpb};

/** The SB sizes the paper evaluates. */
inline const std::vector<unsigned> kSbSizes{14, 28, 56};

/**
 * Memoizing simulation runner (many figures share configurations).
 *
 * Figures declare their full (workload × config) grid up front with
 * prewarm()/prewarmGrid(); the grid runs on the exp engine's host
 * thread pool and fills the memo cache, so the table-building loops
 * below hit the cache only. Results are bit-identical to serial
 * execution for any --jobs value.
 */
class Runner
{
  public:
    explicit Runner(const BenchOptions &options) : options_(options) {}

    /** The config run(workload, sb, strategy) would execute. */
    SystemConfig makeStandardConfig(const std::string &workload,
                                    unsigned sb_size,
                                    const Strategy &strategy) const;

    /** Build a config for (workload, SB size, strategy) and run it. */
    const SimResult &run(const std::string &workload, unsigned sb_size,
                         const Strategy &strategy);

    /** Run an arbitrary config (memoized on its key). */
    const SimResult &run(SystemConfig cfg);

    /** Run every not-yet-cached config in parallel (--jobs threads)
     *  and memoize the results. */
    void prewarm(const std::vector<SystemConfig> &configs);

    /** prewarm() of the standard grid workloads × sizes × strategies;
     *  when @p ideal_baseline also (workload, SB56, ideal), the
     *  normalisation denominator nearly every figure shares. */
    void prewarmGrid(const std::vector<std::string> &workloads,
                     const std::vector<unsigned> &sb_sizes,
                     const std::vector<Strategy> &strategies,
                     bool ideal_baseline = true);

    const BenchOptions &options() const { return options_; }

    /** Number of distinct simulations executed. */
    std::size_t executed() const { return cache_.size(); }

  private:
    BenchOptions options_;
    std::map<std::string, SimResult> cache_;
};

/** Unique cache key of a configuration (alias of exp::configKey). */
std::string configKey(const SystemConfig &cfg);

/** Workload lists (paper ordering: SB-bound first). */
std::vector<std::string> suiteAll();
std::vector<std::string> suiteSbBound();

/**
 * Geomean of per-workload values; values below come from a callable
 * mapping workload name -> double.
 */
template <typename F>
double
geomeanOver(const std::vector<std::string> &workloads, F &&value)
{
    std::vector<double> v;
    v.reserve(workloads.size());
    for (const auto &w : workloads)
        v.push_back(value(w));
    return geomean(v);
}

/** Print the standard bench header (paper figure id + what it shows). */
void printHeader(const std::string &figure, const std::string &what,
                 const BenchOptions &options);

} // namespace spburst::bench
