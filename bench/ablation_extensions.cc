/**
 * @file
 * Ablation studies of the design choices DESIGN.md calls out:
 *
 *  1. Backward bursts (paper Sec. IV-A declines them): measured on the
 *     standard suite AND on a synthetic stack-writer that descends
 *     through memory — the one case where they could pay off.
 *  2. Burst issue pacing (L1 prefetch tag-check bandwidth).
 *  3. Demand-reserved MSHRs (how much headroom demands need against
 *     an aggressive burst).
 *  4. Store coalescing (Ros & Kaxiras, the paper's related work [24]):
 *     merging consecutive same-block senior stores multiplies the SB's
 *     effective capacity but hides no latency — orthogonal to SPB.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

namespace
{

SystemConfig
spbCfg(const BenchOptions &options, const std::string &workload,
       unsigned sb)
{
    SystemConfig cfg =
        makeConfig(workload, sb, StorePrefetchPolicy::AtCommit, true);
    cfg.maxUopsPerCore = options.uops;
    cfg.seed = options.seed;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv, 60'000);
    printHeader("Ablations",
                "backward bursts / burst pacing / MSHR reserve / coalescing",
                options);
    Runner runner(options);
    {
        std::vector<SystemConfig> grid;
        for (const auto &w : suiteSbBound()) {
            SystemConfig fwd = spbCfg(options, w, 14);
            grid.push_back(fwd);
            SystemConfig both = fwd;
            both.spb.backwardBursts = true;
            grid.push_back(both);
            for (unsigned rate : {1u, 2u, 4u, 8u}) {
                SystemConfig cfg = spbCfg(options, w, 14);
                cfg.mem.l1d.prefetchIssuePerCycle = rate;
                grid.push_back(cfg);
            }
            for (unsigned reserve : {0u, 4u, 8u, 16u, 32u}) {
                SystemConfig cfg = spbCfg(options, w, 14);
                cfg.mem.l1d.demandReservedMshrs = reserve;
                grid.push_back(cfg);
            }
            SystemConfig base = makeConfig(
                w, 14, StorePrefetchPolicy::AtCommit, false);
            base.maxUopsPerCore = options.uops;
            base.seed = options.seed;
            grid.push_back(base);
            SystemConfig coal = base;
            coal.coalescingSb = true;
            grid.push_back(coal);
            SystemConfig spb = base;
            spb.useSpb = true;
            grid.push_back(spb);
            SystemConfig spb_coal = spb;
            spb_coal.coalescingSb = true;
            grid.push_back(spb_coal);
        }
        runner.prewarm(grid);
    }

    // ---- 1. Backward bursts on the normal suite --------------------
    {
        TextTable table("backward-burst extension (SB14, SPB)",
                        {"workload", "fwd-only cycles", "fwd+bwd cycles",
                         "speedup", "backward bursts fired"});
        for (const auto &w : suiteSbBound()) {
            SystemConfig fwd = spbCfg(options, w, 14);
            SystemConfig both = fwd;
            both.spb.backwardBursts = true;
            const SimResult &a = runner.run(fwd);
            const SimResult &b = runner.run(both);
            table.addRow(
                {w, std::to_string(a.cycles), std::to_string(b.cycles),
                 formatDouble(static_cast<double>(a.cycles) /
                                  static_cast<double>(b.cycles),
                              4),
                 std::to_string(b.spbs[0].backwardBursts)});
        }
        table.print();
        std::printf("\nPaper finding confirmed or refuted above: the "
                    "evaluated applications' SB stalls come from "
                    "FORWARD bursts, so the extra 4 bits buy nothing "
                    "measurable.\n\n");
    }

    // ---- 2. Burst issue pacing --------------------------------------
    {
        TextTable table("L1 prefetch/burst issue bandwidth (SB14, SPB, "
                        "SB-bound geomean cycles vs 2/cycle)",
                        {"tag checks per cycle", "relative cycles"});
        const std::vector<unsigned> rates{1, 2, 4, 8};
        std::vector<double> base;
        for (const auto &w : suiteSbBound()) {
            SystemConfig cfg = spbCfg(options, w, 14);
            cfg.mem.l1d.prefetchIssuePerCycle = 2;
            base.push_back(static_cast<double>(runner.run(cfg).cycles));
        }
        for (unsigned rate : rates) {
            std::vector<double> rel;
            std::size_t i = 0;
            for (const auto &w : suiteSbBound()) {
                SystemConfig cfg = spbCfg(options, w, 14);
                cfg.mem.l1d.prefetchIssuePerCycle = rate;
                rel.push_back(
                    static_cast<double>(runner.run(cfg).cycles) /
                    base[i++]);
            }
            table.addRow(std::to_string(rate), {geomean(rel)}, 4);
        }
        table.print();
        std::puts("");
    }

    // ---- 3. Demand-reserved MSHRs ------------------------------------
    {
        TextTable table("demand-reserved MSHRs (SB14, SPB, SB-bound "
                        "geomean cycles vs 8 reserved)",
                        {"reserved", "relative cycles"});
        std::vector<double> base;
        for (const auto &w : suiteSbBound()) {
            SystemConfig cfg = spbCfg(options, w, 14);
            cfg.mem.l1d.demandReservedMshrs = 8;
            base.push_back(static_cast<double>(runner.run(cfg).cycles));
        }
        for (unsigned reserve : {0u, 4u, 8u, 16u, 32u}) {
            std::vector<double> rel;
            std::size_t i = 0;
            for (const auto &w : suiteSbBound()) {
                SystemConfig cfg = spbCfg(options, w, 14);
                cfg.mem.l1d.demandReservedMshrs = reserve;
                rel.push_back(
                    static_cast<double>(runner.run(cfg).cycles) /
                    base[i++]);
            }
            table.addRow(std::to_string(reserve), {geomean(rel)}, 4);
        }
        table.print();
        std::puts("");
    }

    // ---- 4. Store coalescing vs / with SPB --------------------------
    {
        TextTable table("store coalescing [24] vs SPB (SB14, cycles "
                        "normalised to at-commit)",
                        {"workload", "at-commit", "+coalescing", "SPB",
                         "SPB+coalescing", "entries merged"});
        for (const auto &w : suiteSbBound()) {
            SystemConfig base = makeConfig(
                w, 14, StorePrefetchPolicy::AtCommit, false);
            base.maxUopsPerCore = options.uops;
            base.seed = options.seed;
            SystemConfig coal = base;
            coal.coalescingSb = true;
            SystemConfig spb = base;
            spb.useSpb = true;
            SystemConfig both = spb;
            both.coalescingSb = true;
            const double b =
                static_cast<double>(runner.run(base).cycles);
            const SimResult &rc = runner.run(coal);
            table.addRow(
                {w, "1.000",
                 formatDouble(static_cast<double>(rc.cycles) / b, 3),
                 formatDouble(
                     static_cast<double>(runner.run(spb).cycles) / b, 3),
                 formatDouble(
                     static_cast<double>(runner.run(both).cycles) / b,
                     3),
                 std::to_string(rc.sbs[0].coalesced)});
        }
        table.print();
        std::printf("\nReading: coalescing multiplies effective SB"
                    " capacity (contiguous bursts merge ~8:1) but"
                    " cannot hide the per-block miss latency; SPB"
                    " attacks the latency itself, and the two"
                    " compose.\n");
    }
    return 0;
}
