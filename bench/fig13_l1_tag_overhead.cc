/**
 * @file
 * Fig. 13 — L1D tag-access overhead: total L1D tag accesses of SPB
 * normalised to at-commit. SPB adds prefetch tag checks but removes
 * wrong-path load accesses, so the *net* L1D activity can go down.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv);
    printHeader("Figure 13",
                "L1D tag accesses of SPB normalised to at-commit",
                options);
    Runner runner(options);
    runner.prewarmGrid(suiteAll(), kSbSizes, {kAtCommit, kSpb}, false);

    auto norm = [&](const std::vector<std::string> &workloads, unsigned sb,
                    auto field) {
        double val = 0.0, base = 0.0;
        for (const auto &w : workloads) {
            base += static_cast<double>(
                field(runner.run(w, sb, kAtCommit)));
            val += static_cast<double>(field(runner.run(w, sb, kSpb)));
        }
        return val / base;
    };
    auto tags = [](const SimResult &r) { return r.l1d[0].tagAccesses; };
    auto pf_tags = [](const SimResult &r) {
        return r.l1d[0].tagAccessesPrefetch;
    };
    auto wrong_path = [](const SimResult &r) {
        return r.cores[0].wrongPathLoadsIssued;
    };

    TextTable table("normalised L1D activity (SPB / at-commit)",
                    {"SB size", "group", "total tag accesses",
                     "prefetch tag accesses", "wrong-path loads"});
    for (unsigned sb : kSbSizes) {
        for (const char *group : {"ALL", "SB-BOUND"}) {
            const auto workloads = std::string(group) == "ALL"
                                       ? suiteAll()
                                       : suiteSbBound();
            table.addRow({std::string("SB") + std::to_string(sb), group,
                          formatDouble(norm(workloads, sb, tags), 3),
                          formatDouble(norm(workloads, sb, pf_tags), 3),
                          formatDouble(norm(workloads, sb, wrong_path),
                                       3)});
        }
        table.addSeparator();
    }
    table.print();

    std::printf("\nPaper shape: +3.4%%/+7.7%%/+3.5%% prefetch tag checks"
                " for SB14/28/56 (more on SB-bound apps), but total L1D"
                " accesses drop ~1-2%% thanks to fewer wrong-path"
                " loads.\n");
    return 0;
}
