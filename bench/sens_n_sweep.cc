/**
 * @file
 * Sec. IV-C sensitivity — the SPB window length N: performance
 * normalised to ideal for N in {8,16,24,32,48,64} at each SB size,
 * plus the dynamic-threshold variant ablation at N=48.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

namespace
{

SystemConfig
spbConfig(const BenchOptions &options, const std::string &workload,
          unsigned sb, unsigned n, bool dynamic)
{
    SystemConfig cfg =
        makeConfig(workload, sb, StorePrefetchPolicy::AtCommit, true);
    cfg.spb.checkInterval = n;
    cfg.spb.dynamicThreshold = dynamic;
    cfg.maxUopsPerCore = options.uops;
    cfg.seed = options.seed;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv, 60'000);
    printHeader("Sensitivity (Sec. IV-C)",
                "SPB window length N and the dynamic-threshold variant "
                "(geomean over SB-bound workloads, normalised to ideal)",
                options);
    Runner runner(options);
    {
        std::vector<SystemConfig> grid;
        for (const auto &w : suiteSbBound()) {
            grid.push_back(runner.makeStandardConfig(w, 56, kIdeal));
            for (unsigned sb : kSbSizes) {
                for (unsigned n : {8u, 16u, 24u, 32u, 48u, 64u})
                    grid.push_back(spbConfig(options, w, sb, n, false));
                grid.push_back(spbConfig(options, w, sb, 48, true));
            }
        }
        runner.prewarm(grid);
    }

    const std::vector<unsigned> ns{8, 16, 24, 32, 48, 64};
    auto norm = [&](unsigned sb, unsigned n, bool dynamic) {
        return geomeanOver(suiteSbBound(), [&](const std::string &w) {
            const double ideal =
                static_cast<double>(runner.run(w, 56, kIdeal).cycles);
            return ideal /
                   static_cast<double>(
                       runner.run(spbConfig(options, w, sb, n, dynamic))
                           .cycles);
        });
    };

    TextTable table("normalised performance vs N",
                    {"SB size", "N=8", "N=16", "N=24", "N=32", "N=48",
                     "N=64", "dyn. N=48"});
    for (unsigned sb : kSbSizes) {
        std::vector<double> row;
        for (unsigned n : ns)
            row.push_back(norm(sb, n, false));
        row.push_back(norm(sb, 48, true));
        table.addRow("SB" + std::to_string(sb), row, 3);
    }
    table.print();

    std::printf("\nPaper finding: N between 24 and 48 performs well"
                " (48 chosen); the dynamic-threshold variant is never"
                " better than plain SPB due to adaptation hysteresis.\n");
    return 0;
}
