/**
 * @file
 * Fig. 6 — Per-application performance of the SB-bound workloads,
 * normalised to the ideal SB, one table per SB size (the paper's three
 * subplots).
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv, 100'000);
    printHeader("Figure 6",
                "Per-app performance normalised to the ideal SB "
                "(SB-bound workloads)",
                options);
    Runner runner(options);
    runner.prewarmGrid(suiteSbBound(), {14u, 28u, 56u},
                       kRealStrategies);

    for (unsigned sb : {14u, 28u, 56u}) {
        // Two-step concat: GCC 12 -Wrestrict misfires on
        // operator+(const char *, std::string &&).
        std::string title = "(";
        title += sb == 14 ? "a" : sb == 28 ? "b" : "c";
        title += ") ";
        title += std::to_string(sb);
        title += "-entry SB";
        TextTable table(title,
                        {"workload", "at-execute", "at-commit", "SPB"});
        for (const auto &w : suiteSbBound()) {
            const double ideal =
                static_cast<double>(runner.run(w, 56, kIdeal).cycles);
            std::vector<double> row;
            for (const Strategy &s : kRealStrategies)
                row.push_back(
                    ideal /
                    static_cast<double>(runner.run(w, sb, s).cycles));
            table.addRow(w, row, 3);
        }
        table.print();
        std::puts("");
    }

    std::printf("Paper shape: at SB14 at-commit drops to ~0.4-0.9 per"
                " app while SPB stays close to ideal; some apps exceed"
                " 1.0 with SPB (super-linear effect); roms benefits"
                " least (conflict-miss pathology).\n");
    return 0;
}
