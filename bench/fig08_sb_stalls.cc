/**
 * @file
 * Fig. 8 — SB-induced stall cycles normalised to the at-commit
 * baseline (lower is better), for at-execute, SPB and the ideal SB at
 * each SB size.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv);
    printHeader("Figure 8",
                "SB stalls normalised to at-commit (lower is better)",
                options);
    Runner runner(options);
    runner.prewarmGrid(suiteAll(), kSbSizes,
                       {kAtCommit, kAtExecute, kSpb}, false);

    auto norm = [&](const std::vector<std::string> &workloads, unsigned sb,
                    const Strategy &s) {
        // Aggregate-sum ratio: per-app ratios blow up when a workload's
        // baseline SB stalls are near zero, so normalise totals.
        double base = 0.0, val = 0.0;
        for (const auto &w : workloads) {
            base += static_cast<double>(
                runner.run(w, sb, kAtCommit).sbStalls());
            val += static_cast<double>(runner.run(w, sb, s).sbStalls());
        }
        return base == 0.0 ? 1.0 : val / base;
    };

    TextTable table("normalised SB stalls",
                    {"SB size", "strategy", "ALL", "SB-BOUND"});
    for (unsigned sb : kSbSizes) {
        for (const Strategy &s : {kAtExecute, kSpb}) {
            table.addRow({std::string("SB") + std::to_string(sb), s.label,
                          formatDouble(norm(suiteAll(), sb, s), 3),
                          formatDouble(norm(suiteSbBound(), sb, s), 3)});
        }
        table.addSeparator();
    }
    table.print();

    std::printf("\nPaper shape: SPB drops average SB stalls by 24%%"
                " (SB56) to 37%% (SB28); cold stores, late prefetches"
                " and non-contiguous patterns keep the rest.\n");
    return 0;
}
