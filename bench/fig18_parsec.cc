/**
 * @file
 * Fig. 18 — Multithreaded evaluation: PARSEC-like workloads on 8
 * cores through the MESI directory, performance normalised to the
 * ideal SB, for at-commit and SPB at SB sizes 14/28/56. Also reports
 * the coherence impact of SPB bursts (invalidations they caused).
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "trace/workloads.hh"

using namespace spburst;
using namespace spburst::bench;

namespace
{

constexpr int kThreads = 8;

SystemConfig
parsecConfig(const BenchOptions &options, const std::string &workload,
             unsigned sb, const spburst::bench::Strategy &s)
{
    SystemConfig cfg = makeConfig(workload, sb, s.policy, s.spb, s.ideal);
    cfg.threads = kThreads;
    cfg.maxUopsPerCore = options.uops;
    cfg.seed = options.seed;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv, 30'000);
    printHeader("Figure 18",
                "PARSEC-like suite, 8 threads, performance normalised "
                "to the ideal SB",
                options);
    Runner runner(options);
    {
        std::vector<SystemConfig> grid;
        for (const auto &w : allParsecNames()) {
            grid.push_back(parsecConfig(options, w, 56, kIdeal));
            for (unsigned sb : kSbSizes)
                for (const auto &s : {kAtCommit, kSpb})
                    grid.push_back(parsecConfig(options, w, sb, s));
        }
        runner.prewarm(grid);
    }

    const auto all = allParsecNames();
    const auto bound = sbBoundParsecNames();

    auto norm = [&](const std::string &w, unsigned sb,
                    const spburst::bench::Strategy &s) {
        const double ideal = static_cast<double>(
            runner.run(parsecConfig(options, w, 56, kIdeal)).cycles);
        return ideal /
               static_cast<double>(
                   runner.run(parsecConfig(options, w, sb, s)).cycles);
    };

    TextTable table("geomean normalised performance (8 threads)",
                    {"SB size", "strategy", "ALL", "SB-BOUND"});
    for (unsigned sb : kSbSizes) {
        for (const auto &s : {kAtCommit, kSpb}) {
            table.addRow(
                {std::string("SB") + std::to_string(sb), s.label,
                 formatDouble(geomeanOver(all,
                                          [&](const std::string &w) {
                                              return norm(w, sb, s);
                                          }),
                              3),
                 formatDouble(geomeanOver(bound,
                                          [&](const std::string &w) {
                                              return norm(w, sb, s);
                                          }),
                              3)});
        }
        table.addSeparator();
    }
    table.print();
    std::puts("");

    // Coherence friendliness: invalidations caused by SPB bursts.
    TextTable coh("SPB coherence impact (SB14, per workload)",
                  {"workload", "SPB perf / at-commit",
                   "dir invalidations", "caused by SPB"});
    for (const auto &w : bound) {
        const SimResult &ac =
            runner.run(parsecConfig(options, w, 14, kAtCommit));
        const SimResult &spb =
            runner.run(parsecConfig(options, w, 14, kSpb));
        coh.addRow({w,
                    formatDouble(static_cast<double>(ac.cycles) /
                                     static_cast<double>(spb.cycles),
                                 3),
                    std::to_string(spb.directory.invalidations),
                    std::to_string(spb.directory.invalidationsBySpb)});
    }
    coh.print();

    std::printf("\nPaper shape: SPB gains ~1%% at SB56 and up to 18.5%%"
                " (SB-bound) at SB14; no workload regresses — store"
                " bursts hit private data, so SPB stays"
                " coherence-friendly.\n");
    return 0;
}
