/**
 * @file
 * Component micro-benchmarks (google-benchmark): throughput of the hot
 * simulator structures — the SPB detector, the cache tag array, the
 * MSHR file, the stream prefetcher, the event queue, and end-to-end
 * simulated-uops-per-second of the full system.
 */

#include <benchmark/benchmark.h>

#include "common/clock.hh"
#include "common/rng.hh"
#include "core/spb.hh"
#include "mem/cache.hh"
#include "mem/mshr.hh"
#include "prefetch/stream_prefetcher.hh"
#include "sim/system.hh"

using namespace spburst;

namespace
{

void
BM_SpbDetectorContiguous(benchmark::State &state)
{
    SpbParams params;
    params.checkInterval = static_cast<unsigned>(state.range(0));
    SpbDetector detector(params);
    Addr addr = 0x10000000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(detector.onStoreCommit(addr, 8));
        addr += 8;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpbDetectorContiguous)->Arg(8)->Arg(48);

void
BM_SpbDetectorRandom(benchmark::State &state)
{
    SpbDetector detector(SpbParams{});
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            detector.onStoreCommit(rng.below(1u << 30), 8));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpbDetectorRandom);

void
BM_CacheLookupHit(benchmark::State &state)
{
    SetAssocCache cache(CacheGeometry{32 * 1024, 8});
    for (Addr a = 0; a < 32 * 1024; a += kBlockSize)
        cache.fill(cache.victim(a), a, CohState::Exclusive);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.find(addr));
        addr = (addr + kBlockSize) & (32 * 1024 - 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookupHit);

void
BM_CacheFillEvict(benchmark::State &state)
{
    SetAssocCache cache(CacheGeometry{32 * 1024, 8});
    Addr addr = 0;
    for (auto _ : state) {
        CacheBlk &victim = cache.victim(addr);
        cache.fill(victim, addr, CohState::Exclusive);
        addr += kBlockSize;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheFillEvict);

void
BM_MshrAllocateDeallocate(benchmark::State &state)
{
    MshrFile mshr(64);
    Addr addr = 0;
    for (auto _ : state) {
        mshr.allocate(addr, MemCmd::ReadReq, 0);
        mshr.deallocate(addr);
        addr += kBlockSize;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MshrAllocateDeallocate);

void
BM_StreamPrefetcherTrain(benchmark::State &state)
{
    StreamPrefetcher pf(PrefetcherMode::Aggressive);
    std::vector<Addr> out;
    MemRequest req;
    req.cmd = MemCmd::ReadReq;
    Addr addr = 0;
    for (auto _ : state) {
        out.clear();
        req.blockAddr = addr;
        pf.notifyAccess(req, false, out);
        benchmark::DoNotOptimize(out.data());
        addr += kBlockSize;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamPrefetcherTrain);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    SimClock clock;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        // spburst-lint: allow(callback-capture) -- sink outlives the event: tick() drains it within the same loop iteration
        clock.events.schedule(clock.now + 1, [&sink] { ++sink; });
        clock.tick();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_FullSystemUopsPerSecond(benchmark::State &state)
{
    for (auto _ : state) {
        SystemConfig cfg = makeConfig(
            "x264", 56, StorePrefetchPolicy::AtCommit, true);
        cfg.maxUopsPerCore = 20'000;
        const SimResult r = runSystem(cfg);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_FullSystemUopsPerSecond)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
