/**
 * @file
 * Fig. 15 — Per-SB-bound-application execution stalls with L1D misses
 * pending, normalised to at-commit. roms is expected to be the
 * adversarial case: SPB bursts evict useful blocks from its small hot
 * read set (conflict/capacity pathology).
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace spburst;
using namespace spburst::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = BenchOptions::parse(argc, argv);
    printHeader("Figure 15",
                "Per-app exec stalls with L1D misses pending, "
                "normalised to at-commit",
                options);
    Runner runner(options);
    runner.prewarmGrid(suiteSbBound(), {14u, 28u, 56u},
                       {kAtCommit, kSpb, kIdeal}, false);

    for (unsigned sb : {14u, 28u, 56u}) {
        TextTable table(std::to_string(sb) + "-entry SB",
                        {"workload", "SPB", "ideal",
                         "SPB L1D load misses / at-commit"});
        for (const auto &w : suiteSbBound()) {
            const SimResult &base = runner.run(w, sb, kAtCommit);
            const SimResult &spb = runner.run(w, sb, kSpb);
            const SimResult &ideal = runner.run(w, sb, kIdeal);
            const double b =
                static_cast<double>(base.execStallsL1d());
            table.addRow(
                {w,
                 formatDouble(
                     ratio(static_cast<double>(spb.execStallsL1d()), b,
                           1.0),
                     3),
                 formatDouble(
                     ratio(static_cast<double>(ideal.execStallsL1d()), b,
                           1.0),
                     3),
                 formatDouble(
                     ratio(static_cast<double>(spb.l1d[0].loadMisses),
                           static_cast<double>(base.l1d[0].loadMisses),
                           1.0),
                     3)});
        }
        table.print();
        std::puts("");
    }

    std::printf("Paper shape: every SB-bound app improves except roms,"
                " where SPB-induced evictions raise L1D misses (~+10%%"
                " conflict misses in the paper).\n");
    return 0;
}
